//! The RecPart optimizer (Algorithm 1 of the paper).
//!
//! Starting from a single leaf covering the whole join-attribute space, RecPart
//! repeatedly picks the leaf whose best candidate split has the highest score (ratio of
//! load-variance reduction to input-duplication increase, see [`crate::scoring`]) and
//! applies that split:
//!
//! * a **regular** leaf is split by the best hyperplane found over all allowed
//!   dimensions (decision-tree style, Algorithm 2);
//! * a **small** leaf (extent below twice the band width in every dimension) instead
//!   increments the row or column count of its internal 1-Bucket grid.
//!
//! All estimates are derived from a fixed-size input sample and output sample, so the
//! optimization cost is `O(w log w + w·d)` for `w` workers and `d` dimensions.
//! The optimizer tracks the best partitioning seen so far and stops according to the
//! configured [`Termination`] rule.

use crate::band::BandCondition;
use crate::config::{Evaluator, RecPartConfig, SplitScorer, Termination};
use crate::error::RecPartError;
use crate::geometry::Rect;
use crate::load::LptHeap;
use crate::metrics::{EvalCounters, SplitSearchCounters};
use crate::parallel::{chunk_ranges, Parallelism};
use crate::partition::{AssignmentSink, PartitionId, Partitioner};
use crate::relation::Relation;
use crate::router::CompiledRouter;
use crate::sample::{InputSample, OutputSample};
use crate::scoring::{advance, merge_dedup, partition_load, variance_term, SplitScore};
use crate::small::BucketGrid;
use crate::split_tree::{LeafNode, NodeId, SplitKind, SplitTree};
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Below this many sample points (S + T + output) in a refresh batch, leaves are
/// scored sequentially even in parallel mode: the fan-out overhead would exceed the
/// scoring work. Purely a wall-clock knob — results are identical either way.
const MIN_PARALLEL_POINTS: usize = 4_096;

/// Minimum number of candidate boundaries per parallel scoring chunk; smaller
/// dimensions are swept as a single chunk.
const MIN_CANDIDATES_PER_CHUNK: usize = 2_048;

/// Fixed chunk size of `finalize`'s sample re-routing. The chunk layout is a pure
/// function of the sample length (never of the thread count), which is what keeps
/// the estimated per-partition loads bit-identical across `threads` settings.
const FINALIZE_CHUNK_TUPLES: usize = 4_096;

/// The action chosen for a leaf by `best_split`.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SplitAction {
    /// Split the leaf by the hyperplane `A_dim < value`.
    Plane {
        dim: usize,
        value: f64,
        kind: SplitKind,
    },
    /// Increment the leaf's internal 1-Bucket grid.
    Grid { add_row: bool },
    /// Nothing useful to do with this leaf.
    None,
}

/// Best split of a leaf together with its score and estimated duplication increase.
#[derive(Debug, Clone, Copy, PartialEq)]
struct BestSplit {
    score: SplitScore,
    action: SplitAction,
    dup_increase: f64,
}

impl BestSplit {
    fn none() -> Self {
        BestSplit {
            score: SplitScore::NotSplittable,
            action: SplitAction::None,
            dup_increase: 0.0,
        }
    }
}

/// One sorted projection column: sample indices ordered ascending by the key value
/// in some dimension, **plus the projected values themselves** in the same order.
/// Caching the values next to the indices lets the sweep scorer read its per-visit
/// value arrays straight out of the leaf instead of re-gathering them from the
/// samples (`build_dim_arrays` used to do one indexed gather per array per visit) —
/// a deliberate memory-for-time trade.
#[derive(Debug, Clone, Default)]
struct SortedProj {
    idx: Vec<u32>,
    vals: Vec<f64>,
}

impl SortedProj {
    fn with_capacity(n: usize) -> Self {
        SortedProj {
            idx: Vec::with_capacity(n),
            vals: Vec::with_capacity(n),
        }
    }

    /// Materialize the values of an argsorted index array.
    fn gather(idx: Vec<u32>, value_of: impl Fn(u32) -> f64) -> Self {
        SortedProj {
            vals: idx.iter().map(|&i| value_of(i)).collect(),
            idx,
        }
    }

    #[inline]
    fn push(&mut self, idx: u32, val: f64) {
        self.idx.push(idx);
        self.vals.push(val);
    }

    fn len(&self) -> usize {
        self.idx.len()
    }
}

/// A sorted projection of one *input* side, carrying the **band-shifted copies** of
/// its value array next to the values: `minus[k] = vals[k] − ε` and
/// `plus[k] = vals[k] + ε` (with each side's duplication shifts). Shifting by a
/// constant is monotone under IEEE rounding, so the shifted copies of a sorted array
/// are sorted and let the sweep answer the reference scorer's shifted
/// `partition_point` predicates (`v − ε < x` etc.) with plain `< x` pointer advances.
///
/// The shifted arrays are pure elementwise functions of `vals`, so they are computed
/// once — at the root — and thereafter **split to children in lockstep** with the
/// values on every plane split, exactly like the index/value columns themselves:
/// another memory-for-time trade that removes the per-leaf-visit materialization the
/// sweep used to pay. `minus`/`plus` stay empty when the configuration never reads
/// them (the S side under asymmetric partitioning, where only T-splits are scored).
#[derive(Debug, Clone, Default)]
struct BandProj {
    idx: Vec<u32>,
    vals: Vec<f64>,
    minus: Vec<f64>,
    plus: Vec<f64>,
}

impl BandProj {
    /// Materialize an argsorted index array's values plus, when `shifts` is
    /// `Some((sub, add))`, the band-shifted copies `vals − sub` / `vals + add`.
    fn gather(idx: Vec<u32>, value_of: impl Fn(u32) -> f64, shifts: Option<(f64, f64)>) -> Self {
        let vals: Vec<f64> = idx.iter().map(|&i| value_of(i)).collect();
        let (minus, plus) = match shifts {
            Some((sub, add)) => (
                vals.iter().map(|&v| v - sub).collect(),
                vals.iter().map(|&v| v + add).collect(),
            ),
            None => (Vec::new(), Vec::new()),
        };
        BandProj {
            idx,
            vals,
            minus,
            plus,
        }
    }

    /// An empty projection shaped like `src` (shifted columns enabled iff `src`
    /// carries them), with capacity for `src`'s length.
    fn like(src: &BandProj) -> Self {
        let n = src.len();
        let shifted = |enabled: bool| {
            if enabled {
                Vec::with_capacity(n)
            } else {
                Vec::new()
            }
        };
        BandProj {
            idx: Vec::with_capacity(n),
            vals: Vec::with_capacity(n),
            minus: shifted(!src.minus.is_empty()),
            plus: shifted(!src.plus.is_empty()),
        }
    }

    /// Copy entry `k` of `src` (index, value, and any shifted columns) to the end.
    #[inline]
    fn push_from(&mut self, src: &BandProj, k: usize) {
        self.idx.push(src.idx[k]);
        self.vals.push(src.vals[k]);
        if !src.minus.is_empty() {
            self.minus.push(src.minus[k]);
        }
        if !src.plus.is_empty() {
            self.plus.push(src.plus[k]);
        }
    }

    fn len(&self) -> usize {
        self.idx.len()
    }
}

/// One dimension's cached sorted projections of a leaf's sample points.
///
/// Each column holds sample indices (and their projected values) ordered ascending by
/// the key value in that dimension (`f64::total_cmp` order): `s`/`t` index the input
/// samples (with their band-shifted copies, see [`BandProj`]), `o_s`/`o_t` index
/// output pairs by their S-side / T-side key (`o_t` stays empty unless symmetric
/// partitioning is enabled — only S-splits score against the T-side order).
///
/// `bounds` caches the candidate split boundaries — the distinct values of the
/// combined input sample ([`merge_dedup`] of `s.vals` and `t.vals`) — so a leaf visit
/// materializes nothing: the boundaries are derived once per leaf when its value
/// arrays are built (at the root, or from the freshly split child arrays).
#[derive(Debug, Clone, Default)]
struct DimProjection {
    s: BandProj,
    t: BandProj,
    o_s: SortedProj,
    o_t: SortedProj,
    bounds: Vec<f64>,
}

/// Cached per-dimension sorted projections of a leaf (sweep-line scorer only).
///
/// Built exactly once per leaf: at the root by argsorting the samples, at every plane
/// split by a stable linear partition of the parent's arrays — so no leaf visit ever
/// re-sorts, and the work per split is proportional to the leaf's sample size.
#[derive(Debug, Clone, Default)]
struct LeafProjections {
    dims: Vec<DimProjection>,
}

/// Per-leaf working state of the optimizer: the sample points that fall into the leaf
/// and the cached best split.
#[derive(Debug, Clone)]
struct LeafWork {
    node: NodeId,
    s_pts: Vec<u32>,
    t_pts: Vec<u32>,
    /// Indices of output-sample pairs routed to this leaf.
    o_pts: Vec<u32>,
    /// Cached sorted projections (`None` for small leaves, which never plane-split,
    /// and under the reference [`SplitScorer::BinarySearch`], which re-sorts per visit).
    proj: Option<LeafProjections>,
    grid: BucketGrid,
    is_small: bool,
    best: BestSplit,
    version: u32,
}

impl LeafWork {
    /// Total sample points in the leaf (used to gate parallel fan-outs).
    fn points(&self) -> usize {
        self.s_pts.len() + self.t_pts.len() + self.o_pts.len()
    }
}

/// Stable partition of a sorted projection into the two children of an exclusive
/// split: every entry goes to exactly one side, relative order is preserved, so both
/// outputs stay sorted by whatever key ordered the input.
fn partition_exclusive(
    src: &SortedProj,
    goes_left: impl Fn(u32) -> bool,
) -> (SortedProj, SortedProj) {
    let mut left = SortedProj::with_capacity(src.len());
    let mut right = SortedProj::with_capacity(src.len());
    for (&i, &v) in src.idx.iter().zip(&src.vals) {
        if goes_left(i) {
            left.push(i, v);
        } else {
            right.push(i, v);
        }
    }
    (left, right)
}

/// [`partition_exclusive`] for a banded projection: the band-shifted columns travel
/// with their entries (every output array is a subsequence of its input, so the
/// children's shifted copies are bit-identical to recomputing them from the
/// children's values).
fn partition_banded_exclusive(
    src: &BandProj,
    goes_left: impl Fn(u32) -> bool,
) -> (BandProj, BandProj) {
    let mut left = BandProj::like(src);
    let mut right = BandProj::like(src);
    for (k, &i) in src.idx.iter().enumerate() {
        if goes_left(i) {
            left.push_from(src, k);
        } else {
            right.push_from(src, k);
        }
    }
    (left, right)
}

/// Stable partition of a banded projection under a duplicating split: an entry may go
/// to the left child, the right child, or both (tuples within band width of the
/// boundary). Relative order is preserved on both sides, shifted columns in lockstep.
fn partition_banded_duplicating(
    src: &BandProj,
    membership: impl Fn(u32) -> (bool, bool),
) -> (BandProj, BandProj) {
    let mut left = BandProj::like(src);
    let mut right = BandProj::like(src);
    for (k, &i) in src.idx.iter().enumerate() {
        let (l, r) = membership(i);
        if l {
            left.push_from(src, k);
        }
        if r {
            right.push_from(src, k);
        }
    }
    (left, right)
}

/// The per-dimension value arrays one sweep pass runs over — **all borrowed** from
/// the leaf's cached projections. Nothing is materialized per visit anymore: the
/// band-shifted copies (`t_minus` = `t − ε_lo`, `t_plus` = `t + ε_hi`, and the S-side
/// counterparts under symmetric partitioning) live in the cached [`BandProj`]s and
/// the candidate boundaries in [`DimProjection::bounds`], both split to children in
/// lockstep with the value arrays. All arrays are sorted ascending.
struct DimArrays<'w> {
    dim: usize,
    /// The leaf region's bounds in `dim`.
    lo: f64,
    hi: f64,
    s_vals: &'w [f64],
    t_vals: &'w [f64],
    t_minus: &'w [f64],
    t_plus: &'w [f64],
    o_s: &'w [f64],
    s_minus: &'w [f64],
    s_plus: &'w [f64],
    o_t: &'w [f64],
    /// Candidate boundaries: distinct values of the combined input sample in `dim`.
    bounds: &'w [f64],
}

impl DimArrays<'_> {
    /// Number of candidate windows (consecutive distinct-value pairs).
    fn windows(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }
}

/// Entry of the leaf priority queue, ordered by split score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueueEntry {
    score: SplitScore,
    leaf: NodeId,
    version: u32,
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .cmp(&other.score)
            .then_with(|| other.leaf.cmp(&self.leaf))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One leaf's cells in the evaluation ledger: the estimated per-cell input/output,
/// the number of identical cells (the leaf's internal 1-Bucket grid size; 1 for a
/// regular leaf), and the precomputed per-cell load.
#[derive(Debug, Clone, Copy)]
struct LedgerEntry {
    node: NodeId,
    /// Estimated input of **one** cell of this leaf.
    input: f64,
    /// Estimated output of one cell.
    output: f64,
    /// Number of identical cells.
    count: u32,
    /// Per-cell load `β₂·input + β₃·output` under the configured model.
    load: f64,
}

/// Sentinel for "this node has no ledger entry" in [`EvalLedger::pos`].
const NO_ENTRY: u32 = u32::MAX;

/// LPT processing order of two ledger entries: descending per-cell load, ascending
/// node id among exact load ties. A **total** order, so the incrementally maintained
/// sequence and a from-scratch sort agree element for element — which is what makes
/// [`Evaluator::Incremental`] and [`Evaluator::FullRecompute`] bit-identical by
/// construction rather than by luck.
///
/// Relation to the pre-ledger `evaluate()`: that code unstable-sorted individual
/// cells by load alone, leaving the permutation *within* an exact-load tie class
/// unspecified. Permuting equal-load cells only changes the evaluation when tied
/// cells differ in their `(input, output)` mix — which requires an exact `f64`
/// equality between differently composed weighted sums, a measure-zero coincidence
/// for sample-estimated loads (and impossible within one leaf, whose cells are
/// identical). The pinned `tests/golden_stats.rs` workload guards the flagship
/// path against this residual tie risk.
#[inline]
fn lpt_order(a_load: f64, a_node: NodeId, b_load: f64, b_node: NodeId) -> Ordering {
    b_load.total_cmp(&a_load).then_with(|| a_node.cmp(&b_node))
}

/// The persistent per-leaf cost ledger behind `evaluate()`.
///
/// Instead of re-deriving every leaf's cell estimates, re-sorting all cells by load,
/// and re-walking the tree after **every** applied split, the optimizer keeps this
/// ledger alive across iterations:
///
/// * [`EvalLedger::entries`] holds one compact cost entry per leaf **in depth-first
///   leaf order**. A plane split's children replace their parent *in place* in that
///   order (exactly how [`SplitTree::for_each_leaf`] visits them), so the
///   total-input summation runs over the same cell sequence a fresh tree walk would
///   produce — bit-identically, without walking the tree.
/// * [`EvalLedger::order`] holds the leaf ids in LPT processing order (see
///   [`lpt_order`]). Applying a split performs two binary-searched run edits
///   (remove the parent, insert each child); nothing is ever re-sorted.
///
/// [`Evaluator::FullRecompute`] simply calls [`EvalLedger::rebuild`] before every
/// evaluation — the O(leaves) walk + O(n log n) sort the incremental path deletes —
/// and both evaluators share [`EvalLedger::evaluate`], so their results cannot
/// diverge.
#[derive(Debug, Default)]
struct EvalLedger {
    /// Per-leaf cost entries in depth-first leaf order.
    entries: Vec<LedgerEntry>,
    /// `pos[node] = index` of the node's entry in `entries` ([`NO_ENTRY`] if none).
    pos: Vec<u32>,
    /// Leaf ids in LPT processing order.
    order: Vec<NodeId>,
    /// Scratch: per-worker accumulated input/output, reused across evaluations.
    worker_in: Vec<f64>,
    worker_out: Vec<f64>,
    /// Scratch: the LPT worker min-heap, reused across evaluations.
    lpt: LptHeap,
}

impl EvalLedger {
    /// The entry of `pos[node]`, which must exist.
    #[inline]
    fn entry(&self, node: NodeId) -> &LedgerEntry {
        &self.entries[self.pos[node as usize] as usize]
    }

    /// Position of `node` in the LPT order (binary search on the total order).
    fn order_position(&self, load: f64, node: NodeId) -> Result<usize, usize> {
        self.order.binary_search_by(|&n| {
            let e = self.entry(n);
            lpt_order(e.load, n, load, node)
        })
    }

    fn remove_from_order(&mut self, node: NodeId) {
        let load = self.entry(node).load;
        let idx = self
            .order_position(load, node)
            .expect("split leaf must be present in the LPT order");
        self.order.remove(idx);
    }

    fn insert_into_order(&mut self, node: NodeId) {
        let load = self.entry(node).load;
        let idx = match self.order_position(load, node) {
            Ok(i) | Err(i) => i,
        };
        self.order.insert(idx, node);
    }

    /// Grow the node→entry map to cover `node`.
    fn reserve_node(&mut self, node: NodeId) {
        let need = node as usize + 1;
        if self.pos.len() < need {
            self.pos.resize(need, NO_ENTRY);
        }
    }

    /// Rebuild everything from the tree — one leaf visit per leaf plus a full sort
    /// of the LPT order. The initial state of the incremental evaluator, and the
    /// entire per-evaluation work of [`Evaluator::FullRecompute`].
    fn rebuild(
        &mut self,
        state: &OptimizerState<'_>,
        tree: &SplitTree,
        works: &[Option<LeafWork>],
        counters: &mut EvalCounters,
    ) {
        self.entries.clear();
        tree.for_each_leaf(|leaf_id, _| {
            let Some(Some(work)) = works.get(leaf_id as usize) else {
                return;
            };
            self.entries.push(state.ledger_entry(work));
        });
        counters.ledger_leaf_visits += self.entries.len() as u64;
        self.pos.clear();
        self.pos.resize(tree.num_nodes(), NO_ENTRY);
        for (i, e) in self.entries.iter().enumerate() {
            self.pos[e.node as usize] = i as u32;
        }
        self.order.clear();
        self.order.extend(self.entries.iter().map(|e| e.node));
        let entries = &self.entries;
        let pos = &self.pos;
        self.order.sort_unstable_by(|&a, &b| {
            let ea = &entries[pos[a as usize] as usize];
            let eb = &entries[pos[b as usize] as usize];
            lpt_order(ea.load, a, eb.load, b)
        });
    }

    /// Apply a plane split: drop the parent's entry, splice the two children into
    /// its depth-first position, and re-thread the LPT order with two binary-searched
    /// edits. O(leaves) only in the trivial memmove/position-shift sense — no tree
    /// walk, no estimate recomputation for unaffected leaves, no re-sort.
    fn apply_plane_split(
        &mut self,
        state: &OptimizerState<'_>,
        parent: NodeId,
        left: &LeafWork,
        right: &LeafWork,
        counters: &mut EvalCounters,
    ) {
        // Remove the parent from the order while its entry is still addressable.
        self.remove_from_order(parent);
        let i = self.pos[parent as usize] as usize;
        self.entries[i] = state.ledger_entry(left);
        self.entries.insert(i + 1, state.ledger_entry(right));
        self.pos[parent as usize] = NO_ENTRY;
        self.reserve_node(left.node.max(right.node));
        self.pos[left.node as usize] = i as u32;
        // Everything after the left child shifted one position right.
        for (j, e) in self.entries.iter().enumerate().skip(i + 1) {
            self.pos[e.node as usize] = j as u32;
        }
        self.insert_into_order(left.node);
        self.insert_into_order(right.node);
        counters.ledger_leaf_visits += 2;
    }

    /// Re-cost one leaf after its internal 1-Bucket grid changed.
    fn apply_grid_change(
        &mut self,
        state: &OptimizerState<'_>,
        work: &LeafWork,
        counters: &mut EvalCounters,
    ) {
        self.remove_from_order(work.node);
        let i = self.pos[work.node as usize] as usize;
        self.entries[i] = state.ledger_entry(work);
        self.insert_into_order(work.node);
        counters.ledger_leaf_visits += 1;
    }

    /// Compute the [`Evaluation`] of the current ledger state: total input in
    /// depth-first cell order, then the exact heap-LPT worker mapping over the
    /// maintained order. Shared verbatim by both evaluators.
    fn evaluate(&mut self, state: &OptimizerState<'_>, counters: &mut EvalCounters) -> Evaluation {
        let lm = &state.cfg.load_model;
        let w = state.cfg.workers;

        // Total input, summed cell by cell in depth-first leaf order — the same
        // left-to-right float fold a fresh walk over the tree's cells produces.
        let mut total_input = 0.0f64;
        for e in &self.entries {
            for _ in 0..e.count {
                total_input += e.input;
            }
        }

        // LPT mapping of cells onto workers via the shared (load, worker) min-heap:
        // lowest-loaded worker first, lowest index among equal loads — exactly the
        // worker a first-minimum scan selects — at O(log w) per cell.
        self.worker_in.clear();
        self.worker_in.resize(w, 0.0);
        self.worker_out.clear();
        self.worker_out.resize(w, 0.0);
        self.lpt.reset(w, lm.load(0.0, 0.0));
        let mut cells = 0u64;
        for &node in &self.order {
            let e = &self.entries[self.pos[node as usize] as usize];
            for _ in 0..e.count {
                let target = self.lpt.pop_least();
                self.worker_in[target] += e.input;
                self.worker_out[target] += e.output;
                self.lpt.push(
                    target,
                    lm.load(self.worker_in[target], self.worker_out[target]),
                );
            }
            cells += u64::from(e.count);
        }
        counters.lpt_cells += cells;

        let (max_idx, max_load) = (0..w)
            .map(|i| (i, lm.load(self.worker_in[i], self.worker_out[i])))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal))
            .expect("at least one worker");

        let input_lb = (state.s_len + state.t_len) as f64;
        let load_lb = lm.load(input_lb, state.est_output) / w as f64;
        let dup_overhead = (total_input - input_lb) / input_lb;
        let load_overhead = if load_lb > 0.0 {
            (max_load - load_lb) / load_lb
        } else {
            0.0
        };
        let predicted_time = state.cfg.predict_time(
            total_input,
            self.worker_in[max_idx],
            self.worker_out[max_idx],
        );

        Evaluation {
            total_input,
            dup_overhead,
            load_overhead,
            predicted_time,
        }
    }
}

/// Result of evaluating the current partitioning against the lower bounds.
#[derive(Debug, Clone, Copy)]
struct Evaluation {
    total_input: f64,
    dup_overhead: f64,
    load_overhead: f64,
    predicted_time: f64,
}

/// The best partitioning found so far — identified by iteration only. The growth
/// loop keeps an undo log of tree edits, so `finalize` rolls the grown tree back to
/// this iteration instead of the winner carrying a whole-tree clone (which the old
/// bookkeeping took on *every* improving iteration).
#[derive(Debug, Clone, Copy)]
struct Winner {
    iteration: usize,
    eval: Evaluation,
    criterion: f64,
}

/// One reversible tree mutation taken by the growth loop, tagged with the iteration
/// that applied it. Edits after the winning iteration are reverted in LIFO order at
/// finalize time; [`SplitTree::undo_split`]'s arena-tail assertion guarantees the
/// rollback really reconstructs the winning tree.
#[derive(Debug, Clone)]
enum TreeEdit {
    /// A plane split of `leaf`; `prior` is the leaf as it was just before.
    Plane { leaf: NodeId, prior: LeafNode },
    /// A grid increment on `leaf`; `prior` is the grid just before.
    Grid { leaf: NodeId, prior: BucketGrid },
}

/// Summary of an optimization run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimizationReport {
    /// `"RecPart"` or `"RecPart-S"`.
    pub strategy: String,
    /// Number of repeat-loop iterations executed.
    pub iterations: usize,
    /// Iteration at which the returned (winning) partitioning was found.
    pub winning_iteration: usize,
    /// Number of leaves of the winning split tree.
    pub leaves: usize,
    /// Number of partitions (leaf 1-Bucket cells) of the winning tree.
    pub partitions: usize,
    /// Estimated total input (including duplicates) of the winning partitioning.
    pub estimated_total_input: f64,
    /// Estimated duplication overhead `(I − (|S|+|T|)) / (|S|+|T|)`.
    pub estimated_dup_overhead: f64,
    /// Estimated max-load overhead `(L_m − L₀) / L₀`.
    pub estimated_load_overhead: f64,
    /// Estimated output size `|S ⋈ T|` from the output sampler.
    pub estimated_output: f64,
    /// Predicted join time of the winning partitioning under the cost model.
    pub predicted_time: f64,
    /// Wall-clock optimization time in seconds (sampling + tree growth).
    pub optimization_seconds: f64,
    /// Wall-clock seconds spent scoring candidate splits (a subset of
    /// [`OptimizationReport::optimization_seconds`]).
    pub split_search_seconds: f64,
    /// Wall-clock seconds spent in post-split evaluation — ledger maintenance plus
    /// the LPT worker mapping (a subset of
    /// [`OptimizationReport::optimization_seconds`]).
    pub evaluation_seconds: f64,
    /// Split-search work counters. Deterministic functions of the samples and the
    /// configuration — identical across every `threads` setting and both
    /// [`crate::config::SplitScorer`] implementations.
    pub split_search: SplitSearchCounters,
    /// Evaluation work counters. Deterministic functions of the samples, the
    /// configuration, and the chosen [`crate::config::Evaluator`] — identical across
    /// every `threads` setting; `ledger_leaf_visits` is what separates the
    /// incremental evaluator (delta-sized) from the full-recompute baseline
    /// (leaves × evaluations).
    pub evaluation: EvalCounters,
    /// Human-readable reason the loop stopped.
    pub termination_reason: String,
}

/// The partitioner produced by a RecPart optimization run.
///
/// Routes tuples through the split tree (Algorithm 3): S-tuples follow T-split nodes
/// deterministically and are duplicated at S-split nodes, T-tuples vice versa; small
/// leaves route into their internal 1-Bucket grid. The per-tuple
/// [`assign_s`](Partitioner::assign_s)/[`assign_t`](Partitioner::assign_t) walk the
/// tree directly (the reference path); the block methods descend the
/// [`CompiledRouter`] — the same assignment flattened into per-side SoA node tables —
/// which is what the executor's map phase drives.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SplitTreePartitioner {
    tree: SplitTree,
    band: BandCondition,
    seed: u64,
    name: String,
    estimated_loads: Vec<f64>,
    router: CompiledRouter,
}

impl SplitTreePartitioner {
    /// The underlying split tree.
    pub fn tree(&self) -> &SplitTree {
        &self.tree
    }

    /// The band condition the partitioner was built for.
    pub fn band(&self) -> &BandCondition {
        &self.band
    }

    /// The compiled block router (bit-identical to the tree walk).
    pub fn router(&self) -> &CompiledRouter {
        &self.router
    }

    /// A 64-bit digest of everything that determines this partitioner's
    /// assignment: the compiled router (which bakes the tree shape, the band
    /// shifts, and the leaf hash seeds), the routing seed, and the band the
    /// plan was built for (per-dimension ε by IEEE bit pattern). Two
    /// partitioners with equal signatures route every tuple identically, so a
    /// plan cache can key shuffled arenas on the signature.
    pub fn plan_signature(&self) -> u64 {
        let mut h = crate::router::fnv1a_word(crate::router::FNV_OFFSET, self.seed);
        h = crate::router::fnv1a_word(h, self.band.dims() as u64);
        for d in 0..self.band.dims() {
            h = crate::router::fnv1a_word(h, self.band.eps_low(d).to_bits());
            h = crate::router::fnv1a_word(h, self.band.eps_high(d).to_bits());
        }
        crate::router::fnv1a_word(h, self.router.signature())
    }

    /// Build a partitioner directly from a split tree (primarily for tests and tools).
    pub fn from_tree(
        mut tree: SplitTree,
        band: BandCondition,
        seed: u64,
        name: impl Into<String>,
    ) -> Self {
        tree.assign_partition_ids();
        let partitions = tree.num_partitions();
        let router = CompiledRouter::compile(&tree, &band, seed);
        SplitTreePartitioner {
            tree,
            band,
            seed,
            name: name.into(),
            estimated_loads: vec![1.0; partitions],
            router,
        }
    }
}

impl Partitioner for SplitTreePartitioner {
    fn num_partitions(&self) -> usize {
        self.tree.num_partitions()
    }

    fn assign_s(&self, key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>) {
        self.tree.route_s(key, tuple_id, &self.band, self.seed, out);
    }

    fn assign_t(&self, key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>) {
        self.tree.route_t(key, tuple_id, &self.band, self.seed, out);
    }

    fn assign_s_block(
        &self,
        rel: &Relation,
        rows: std::ops::Range<usize>,
        sink: &mut AssignmentSink,
    ) {
        self.router.route_s_block(rel, rows, sink);
    }

    fn assign_t_block(
        &self,
        rel: &Relation,
        rows: std::ops::Range<usize>,
        sink: &mut AssignmentSink,
    ) {
        self.router.route_t_block(rel, rows, sink);
    }

    fn scatter_policy(&self) -> crate::partition::ScatterPolicy {
        // Deep-tree descent is compute-heavy: re-routing every tuple in the scatter
        // pass costs ~2× what the 8-byte pair buffer saves (measured on the
        // pareto-1d smoke workload), so RecPart keeps the single-routing pair list.
        crate::partition::ScatterPolicy::PairList
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn estimated_partition_loads(&self) -> Option<Vec<f64>> {
        Some(self.estimated_loads.clone())
    }
}

/// Result of [`RecPart::optimize`]: the partitioner plus the optimization report.
#[derive(Debug, Clone)]
pub struct RecPartResult {
    /// The winning partitioner.
    pub partitioner: SplitTreePartitioner,
    /// Statistics about the optimization run.
    pub report: OptimizationReport,
}

/// The RecPart optimizer.
#[derive(Debug, Clone)]
pub struct RecPart {
    config: RecPartConfig,
    /// Thread pool for an explicit `threads > 1` bound, built once per optimizer so
    /// repeated `optimize` calls do not pay pool construction. `threads == 0` uses the
    /// ambient rayon context; `threads == 1` bypasses rayon entirely.
    pool: Option<std::sync::Arc<rayon::ThreadPool>>,
}

impl RecPart {
    /// Create an optimizer with the given configuration.
    pub fn new(config: RecPartConfig) -> Self {
        let pool = (config.threads > 1).then(|| {
            std::sync::Arc::new(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(config.threads)
                    .build()
                    .expect("building the split-search thread pool"),
            )
        });
        RecPart { config, pool }
    }

    /// The configuration this optimizer runs with.
    pub fn config(&self) -> &RecPartConfig {
        &self.config
    }

    /// The parallelism context the split search runs under.
    fn parallelism(&self) -> Parallelism<'_> {
        match self.config.threads {
            1 => Parallelism::Sequential,
            0 => Parallelism::Ambient,
            _ => Parallelism::Pool(self.pool.as_ref().expect("pool exists when threads > 1")),
        }
    }

    /// Validate inputs, draw samples, and run the optimization (panicking convenience
    /// wrapper around [`RecPart::try_optimize`]).
    pub fn optimize<R: Rng + ?Sized>(
        &self,
        s: &Relation,
        t: &Relation,
        band: &BandCondition,
        rng: &mut R,
    ) -> RecPartResult {
        self.try_optimize(s, t, band, rng)
            .expect("RecPart optimization failed")
    }

    /// Validate inputs, draw samples, and run the optimization.
    pub fn try_optimize<R: Rng + ?Sized>(
        &self,
        s: &Relation,
        t: &Relation,
        band: &BandCondition,
        rng: &mut R,
    ) -> Result<RecPartResult, RecPartError> {
        if s.is_empty() {
            return Err(RecPartError::EmptyRelation { side: "S" });
        }
        if t.is_empty() {
            return Err(RecPartError::EmptyRelation { side: "T" });
        }
        if s.dims() != t.dims() {
            return Err(RecPartError::DimensionMismatch {
                expected: s.dims(),
                found: t.dims(),
            });
        }
        band.check_dims(s.dims())?;

        let start = Instant::now();
        let total = self.config.sample.input_sample_size.max(2);
        let s_share = ((total as f64 * s.len() as f64 / (s.len() + t.len()) as f64).round()
            as usize)
            .clamp(1, total - 1);
        let s_sample = InputSample::draw(s, s_share, rng);
        let t_sample = InputSample::draw(t, total - s_share, rng);
        let o_sample = OutputSample::draw(s, t, band, &self.config.sample, rng);

        Ok(self.optimize_with_samples(
            s.len(),
            t.len(),
            band,
            &s_sample,
            &t_sample,
            &o_sample,
            start,
        ))
    }

    /// Run the optimization on pre-drawn samples. Exposed so that optimization-time
    /// benchmarks can exclude the sampling cost and so callers can reuse samples
    /// across repeated runs.
    #[allow(clippy::too_many_arguments)]
    pub fn optimize_with_samples(
        &self,
        s_len: usize,
        t_len: usize,
        band: &BandCondition,
        s_sample: &InputSample,
        t_sample: &InputSample,
        o_sample: &OutputSample,
        start: Instant,
    ) -> RecPartResult {
        let cfg = &self.config;
        let dims = band.dims();
        let state = OptimizerState {
            cfg,
            band,
            dims,
            s_len,
            t_len,
            ws: s_sample.weight(),
            wt: t_sample.weight(),
            wo: o_sample.weight(),
            est_output: o_sample.estimated_output(),
            s_sample,
            t_sample,
            o_sample,
            par: self.parallelism(),
        };
        state.run(start)
    }

    /// Benchmark / CI-gate support, **not a public API**: grow the split tree to
    /// termination once, then hand back a harness that re-runs the post-split
    /// evaluation of the final optimizer state on demand — under
    /// [`Evaluator::Incremental`] each call replays only the ledger's LPT mapping
    /// and sums, under [`Evaluator::FullRecompute`] each call additionally rebuilds
    /// the whole ledger from the tree, which is exactly the per-split cost the
    /// incremental evaluator deletes.
    #[doc(hidden)]
    #[allow(clippy::too_many_arguments)]
    pub fn evaluation_bench<'a>(
        &'a self,
        s_len: usize,
        t_len: usize,
        band: &'a BandCondition,
        s_sample: &'a InputSample,
        t_sample: &'a InputSample,
        o_sample: &'a OutputSample,
    ) -> EvaluationBench<'a> {
        let state = OptimizerState {
            cfg: &self.config,
            band,
            dims: band.dims(),
            s_len,
            t_len,
            ws: s_sample.weight(),
            wt: t_sample.weight(),
            wo: o_sample.weight(),
            est_output: o_sample.estimated_output(),
            s_sample,
            t_sample,
            o_sample,
            par: self.parallelism(),
        };
        let grown = state.grow();
        EvaluationBench { state, grown }
    }
}

/// Repeated-evaluation harness returned by [`RecPart::evaluation_bench`]
/// (benchmark / CI-gate support, not a public API).
#[doc(hidden)]
pub struct EvaluationBench<'a> {
    state: OptimizerState<'a>,
    grown: GrownState,
}

impl EvaluationBench<'_> {
    /// Number of leaves of the fully grown tree (benches gate on tree depth).
    pub fn leaves(&self) -> usize {
        self.grown.tree.num_leaves()
    }

    /// Run one evaluation of the final optimizer state under the configured
    /// [`Evaluator`], returning the predicted join time (so callers can black-box
    /// the result).
    pub fn evaluate_once(&mut self) -> f64 {
        let mut counters = EvalCounters::default();
        self.state
            .evaluate(
                &self.grown.tree,
                &self.grown.works,
                &mut self.grown.ledger,
                &mut counters,
            )
            .predicted_time
    }
}

/// Internal optimizer state shared by the helper methods.
struct OptimizerState<'a> {
    cfg: &'a RecPartConfig,
    band: &'a BandCondition,
    dims: usize,
    s_len: usize,
    t_len: usize,
    ws: f64,
    wt: f64,
    wo: f64,
    est_output: f64,
    s_sample: &'a InputSample,
    t_sample: &'a InputSample,
    o_sample: &'a OutputSample,
    par: Parallelism<'a>,
}

/// Everything the tree-growth loop produces: handed to `finalize` by `run`, and kept
/// alive by [`EvaluationBench`] for repeated-evaluation measurements.
struct GrownState {
    tree: SplitTree,
    works: Vec<Option<LeafWork>>,
    ledger: EvalLedger,
    undo_log: Vec<(usize, TreeEdit)>,
    winner: Winner,
    iterations: usize,
    termination_reason: String,
    counters: SplitSearchCounters,
    eval_counters: EvalCounters,
    split_search_seconds: f64,
    evaluation_seconds: f64,
}

impl<'a> OptimizerState<'a> {
    fn run(&self, start: Instant) -> RecPartResult {
        let grown = self.grow();
        self.finalize(grown, start)
    }

    /// Evaluate the current tree under the configured [`Evaluator`]: the
    /// full-recompute baseline rebuilds the whole ledger first, the incremental
    /// evaluator trusts the deltas the growth loop applied.
    fn evaluate(
        &self,
        tree: &SplitTree,
        works: &[Option<LeafWork>],
        ledger: &mut EvalLedger,
        counters: &mut EvalCounters,
    ) -> Evaluation {
        if self.cfg.evaluator == Evaluator::FullRecompute {
            ledger.rebuild(self, tree, works, counters);
        }
        counters.evaluations += 1;
        ledger.evaluate(self, counters)
    }

    /// Grow the split tree to termination (the repeat loop of Algorithm 1).
    fn grow(&self) -> GrownState {
        let cfg = self.cfg;
        let mut tree = SplitTree::new(self.dims);

        // Domain bounding box over all sample points (used for "small" checks).
        let domain = self.domain_box();

        // Leaf working state, indexed by node id.
        let mut works: Vec<Option<LeafWork>> = Vec::new();
        let mut counters = SplitSearchCounters::default();
        let mut split_search_seconds = 0.0f64;
        let mut ledger = EvalLedger::default();
        let mut eval_counters = EvalCounters::default();
        let mut evaluation_seconds = 0.0f64;
        let root_small = self.is_small(&tree, tree.root(), &domain);
        let root_work = LeafWork {
            node: tree.root(),
            s_pts: (0..self.s_sample.len() as u32).collect(),
            t_pts: (0..self.t_sample.len() as u32).collect(),
            o_pts: (0..self.o_sample.len() as u32).collect(),
            proj: (cfg.scorer == SplitScorer::SweepLine && !root_small)
                .then(|| self.build_root_projections()),
            grid: BucketGrid::default(),
            is_small: root_small,
            best: BestSplit::none(),
            version: 0,
        };
        Self::store_work(&mut works, root_work);
        let t0 = Instant::now();
        counters.merge(self.refresh_leaves(&mut works, &tree, &[tree.root()], &domain));
        split_search_seconds += t0.elapsed().as_secs_f64();

        let mut heap: BinaryHeap<QueueEntry> = BinaryHeap::new();
        Self::push_entry(&mut heap, &works, tree.root());

        let mut winner: Option<Winner> = None;
        // Reversible record of every tree mutation, in application order; finalize
        // rolls back the edits past the winning iteration instead of the winner
        // cloning the tree.
        let mut undo_log: Vec<(usize, TreeEdit)> = Vec::new();
        let mut best_load_overhead = f64::INFINITY;
        // Predicted join times recorded after iterations that *paid* input duplication.
        // The applied termination rule (Section 4.2) watches a window of `w` such
        // iterations: duplication-free splits are always worth applying (they can only
        // improve load balance at zero cost), so they keep the loop alive and only the
        // paid iterations can convict the optimizer of wasting duplication.
        let mut paid_time_history: Vec<f64> = Vec::new();
        let mut iterations = 0usize;
        let mut termination_reason = String::from("no more useful splits");

        // Seed the incremental ledger with the initial (single-leaf) state; the
        // full-recompute evaluator rebuilds on every evaluation anyway.
        let e0 = Instant::now();
        if cfg.evaluator == Evaluator::Incremental {
            ledger.rebuild(self, &tree, &works, &mut eval_counters);
        }
        // Evaluate the initial (single-partition) state so the winner is always defined.
        let eval = self.evaluate(&tree, &works, &mut ledger, &mut eval_counters);
        evaluation_seconds += e0.elapsed().as_secs_f64();
        best_load_overhead = best_load_overhead.min(eval.load_overhead);
        paid_time_history.push(eval.predicted_time);
        Self::consider_winner(&mut winner, 0, eval, cfg, &mut eval_counters);

        while iterations < cfg.max_iterations {
            // Pop until a valid entry (leaf still exists, version matches, splittable).
            let entry = loop {
                match heap.pop() {
                    None => break None,
                    Some(e) => {
                        let valid = works
                            .get(e.leaf as usize)
                            .and_then(|w| w.as_ref())
                            .map(|w| w.version == e.version && w.best.score.is_splittable())
                            .unwrap_or(false);
                        if valid {
                            break Some(e);
                        }
                    }
                }
            };
            let Some(entry) = entry else {
                termination_reason = "no leaf with a useful split remains".into();
                break;
            };

            iterations += 1;
            let leaf_id = entry.leaf;
            let best = works[leaf_id as usize]
                .as_ref()
                .expect("validated above")
                .best;
            let paid_duplication = best.dup_increase > 0.0;

            match best.action {
                SplitAction::Plane { dim, value, kind } => {
                    undo_log.push((
                        iterations,
                        TreeEdit::Plane {
                            leaf: leaf_id,
                            prior: tree.leaf(leaf_id).clone(),
                        },
                    ));
                    let (l, r) = self.apply_plane_split(
                        &mut tree, &mut works, leaf_id, dim, value, kind, &domain,
                    );
                    if cfg.evaluator == Evaluator::Incremental {
                        let e0 = Instant::now();
                        ledger.apply_plane_split(
                            self,
                            leaf_id,
                            works[l as usize].as_ref().expect("left child work"),
                            works[r as usize].as_ref().expect("right child work"),
                            &mut eval_counters,
                        );
                        evaluation_seconds += e0.elapsed().as_secs_f64();
                    }
                    let t0 = Instant::now();
                    counters.merge(self.refresh_leaves(&mut works, &tree, &[l, r], &domain));
                    split_search_seconds += t0.elapsed().as_secs_f64();
                    Self::push_entry(&mut heap, &works, l);
                    Self::push_entry(&mut heap, &works, r);
                }
                SplitAction::Grid { add_row } => {
                    undo_log.push((
                        iterations,
                        TreeEdit::Grid {
                            leaf: leaf_id,
                            prior: tree.leaf(leaf_id).grid,
                        },
                    ));
                    let work = works[leaf_id as usize].as_mut().expect("validated above");
                    if add_row {
                        work.grid.rows += 1;
                    } else {
                        work.grid.cols += 1;
                    }
                    work.version += 1;
                    tree.set_leaf_grid(leaf_id, work.grid);
                    if cfg.evaluator == Evaluator::Incremental {
                        let e0 = Instant::now();
                        ledger.apply_grid_change(
                            self,
                            works[leaf_id as usize].as_ref().expect("validated above"),
                            &mut eval_counters,
                        );
                        evaluation_seconds += e0.elapsed().as_secs_f64();
                    }
                    let t0 = Instant::now();
                    counters.merge(self.refresh_leaves(&mut works, &tree, &[leaf_id], &domain));
                    split_search_seconds += t0.elapsed().as_secs_f64();
                    Self::push_entry(&mut heap, &works, leaf_id);
                }
                SplitAction::None => {
                    // Defensive: scores of `None` actions are NotSplittable and filtered.
                    continue;
                }
            }

            let e0 = Instant::now();
            let eval = self.evaluate(&tree, &works, &mut ledger, &mut eval_counters);
            evaluation_seconds += e0.elapsed().as_secs_f64();
            best_load_overhead = best_load_overhead.min(eval.load_overhead);
            if paid_duplication {
                paid_time_history.push(eval.predicted_time);
            }
            Self::consider_winner(&mut winner, iterations, eval, cfg, &mut eval_counters);

            match cfg.termination {
                Termination::Theoretical => {
                    // Duplication overhead is monotone; once it exceeds the best load
                    // overhead seen, the criterion max{dup, load} can no longer improve.
                    if eval.dup_overhead > best_load_overhead {
                        termination_reason =
                            "duplication overhead exceeded best load overhead (theoretical rule)"
                                .into();
                        break;
                    }
                }
                Termination::CostModel { min_improvement } => {
                    let w = cfg.workers;
                    if paid_time_history.len() > w {
                        let split = paid_time_history.len() - w;
                        let before = paid_time_history[..split]
                            .iter()
                            .cloned()
                            .fold(f64::INFINITY, f64::min);
                        let recent = paid_time_history[split..]
                            .iter()
                            .cloned()
                            .fold(f64::INFINITY, f64::min);
                        if recent > before * (1.0 - min_improvement) {
                            termination_reason = format!(
                                "predicted join time improved < {:.1}% over the last {} \
                                 duplication-incurring iterations",
                                min_improvement * 100.0,
                                w
                            );
                            break;
                        }
                    }
                }
            }
        }
        if iterations >= cfg.max_iterations {
            termination_reason = "reached the iteration cap".into();
        }

        GrownState {
            tree,
            works,
            ledger,
            undo_log,
            winner: winner.expect("at least the initial evaluation is recorded"),
            iterations,
            termination_reason,
            counters,
            eval_counters,
            split_search_seconds,
            evaluation_seconds,
        }
    }

    fn domain_box(&self) -> Rect {
        let dims = self.dims;
        let s_box = Rect::bounding_box(dims, self.s_sample.iter());
        let t_box = Rect::bounding_box(dims, self.t_sample.iter());
        match (s_box, t_box) {
            (Some(a), Some(b)) => a.union(&b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => Rect::unbounded(dims),
        }
    }

    fn store_work(works: &mut Vec<Option<LeafWork>>, work: LeafWork) {
        let idx = work.node as usize;
        if works.len() <= idx {
            works.resize_with(idx + 1, || None);
        }
        works[idx] = Some(work);
    }

    fn push_entry(heap: &mut BinaryHeap<QueueEntry>, works: &[Option<LeafWork>], leaf: NodeId) {
        if let Some(Some(w)) = works.get(leaf as usize) {
            if w.best.score.is_splittable() {
                heap.push(QueueEntry {
                    score: w.best.score,
                    leaf,
                    version: w.version,
                });
            }
        }
    }

    /// Is the leaf "small": extent below twice the band width in every dimension?
    fn is_small(&self, tree: &SplitTree, leaf: NodeId, domain: &Rect) -> bool {
        let region = &tree.leaf(leaf).region;
        (0..self.dims).all(|d| {
            let eps = self.band.eps(d);
            eps > 0.0 && region.clipped_extent(d, domain) < 2.0 * eps
        })
    }

    /// May the leaf still be split recursively in dimension `d`?
    fn dim_allowed(&self, tree: &SplitTree, leaf: NodeId, domain: &Rect, d: usize) -> bool {
        let region = &tree.leaf(leaf).region;
        let eps = self.band.eps(d);
        eps == 0.0 || region.clipped_extent(d, domain) >= 2.0 * eps
    }

    fn leaf_estimates(&self, work: &LeafWork) -> (f64, f64, f64) {
        (
            self.ws * work.s_pts.len() as f64,
            self.wt * work.t_pts.len() as f64,
            self.wo * work.o_pts.len() as f64,
        )
    }

    /// Old partition load variance of a leaf (the term a split would replace).
    fn leaf_variance(&self, work: &LeafWork) -> f64 {
        let lm = &self.cfg.load_model;
        let (s_in, t_in, out) = self.leaf_estimates(work);
        let old_load = partition_load(lm.beta_input, lm.beta_output, s_in + t_in, out);
        variance_term(self.cfg.workers, old_load)
    }

    /// Recompute and cache the best split of one leaf (Algorithm 2 `best_split`),
    /// returning the scoring-work counters.
    fn refresh_best(
        &self,
        works: &mut [Option<LeafWork>],
        tree: &SplitTree,
        leaf: NodeId,
        domain: &Rect,
    ) -> SplitSearchCounters {
        let work = works[leaf as usize].as_ref().expect("leaf work must exist");
        let (best, counters) = if work.is_small {
            (
                self.best_grid_increment(work),
                SplitSearchCounters {
                    leaves_scored: 1,
                    ..SplitSearchCounters::default()
                },
            )
        } else {
            match self.cfg.scorer {
                SplitScorer::SweepLine => self.best_plane_split_sweep(tree, work, domain),
                SplitScorer::BinarySearch => self.best_plane_split_reference(tree, work, domain),
            }
        };
        let work = works[leaf as usize].as_mut().expect("leaf work must exist");
        work.best = best;
        counters
    }

    /// Refresh the cached best splits of a batch of leaves — the optimizer's frontier
    /// update after one split. Under a parallel context and the sweep-line scorer,
    /// (leaf, dimension) projections are built and candidate chunks scored
    /// concurrently; the reduction walks the results in (leaf, dimension, candidate)
    /// order with the same strict-`>` comparison the sequential scan uses, so the
    /// chosen splits are bit-identical for every thread count.
    fn refresh_leaves(
        &self,
        works: &mut [Option<LeafWork>],
        tree: &SplitTree,
        leaves: &[NodeId],
        domain: &Rect,
    ) -> SplitSearchCounters {
        let mut counters = SplitSearchCounters::default();
        let parallel_sweep = self.cfg.scorer == SplitScorer::SweepLine
            && self.par.is_parallel()
            && leaves.iter().any(|&leaf| {
                works[leaf as usize]
                    .as_ref()
                    .is_some_and(|w| !w.is_small && w.points() >= MIN_PARALLEL_POINTS)
            });
        if !parallel_sweep {
            for &leaf in leaves {
                counters.merge(self.refresh_best(works, tree, leaf, domain));
            }
            return counters;
        }

        // Small leaves score their 1-Bucket grid in O(1); only regular leaves join
        // the parallel sweep.
        let mut plane: Vec<(NodeId, f64)> = Vec::new();
        for &leaf in leaves {
            let work = works[leaf as usize].as_ref().expect("leaf work must exist");
            counters.leaves_scored += 1;
            if work.is_small {
                let best = self.best_grid_increment(work);
                works[leaf as usize].as_mut().expect("leaf work").best = best;
            } else {
                plane.push((leaf, self.leaf_variance(work)));
            }
        }
        if plane.is_empty() {
            return counters;
        }

        // (leaf, dimension) tasks, leaf-major with ascending dimensions — the order
        // the sequential scan evaluates them in.
        let mut tasks: Vec<(usize, usize)> = Vec::new();
        for (pi, &(leaf, _)) in plane.iter().enumerate() {
            for d in 0..self.dims {
                if self.dim_allowed(tree, leaf, domain, d) {
                    tasks.push((pi, d));
                }
            }
        }

        // Phase A: derive every task's sorted value arrays from the cached
        // projections (one O(n) pass each, no sorting).
        let works_ro: &[Option<LeafWork>] = works;
        let arrays: Vec<DimArrays<'_>> = self.par.run(|| {
            tasks
                .par_iter()
                .map(|&(pi, d)| {
                    let leaf = plane[pi].0;
                    let work = works_ro[leaf as usize].as_ref().expect("leaf work");
                    let region = &tree.leaf(leaf).region;
                    self.build_dim_arrays(work, region, d)
                })
                .collect()
        });
        counters.dims_scanned += tasks.len() as u64;
        for a in &arrays {
            counters.candidates_scored += a.windows() as u64;
        }

        // Phase B: sweep candidate chunks concurrently. Chunk boundaries only
        // partition the work — every candidate's counts are pure functions of its
        // boundary value — so the chunking cannot change the chosen split.
        let threads = self.par.threads();
        let mut chunk_tasks: Vec<(usize, usize, usize)> = Vec::new();
        for (ai, a) in arrays.iter().enumerate() {
            let wins = a.windows();
            if wins == 0 {
                continue;
            }
            let pieces = (wins / MIN_CANDIDATES_PER_CHUNK).clamp(1, threads * 2);
            for (lo, hi) in chunk_ranges(wins, pieces) {
                chunk_tasks.push((ai, lo, hi));
            }
        }
        let chunk_bests: Vec<BestSplit> = self.par.run(|| {
            chunk_tasks
                .par_iter()
                .map(|&(ai, lo, hi)| {
                    let old_var = plane[tasks[ai].0].1;
                    self.score_chunk(&arrays[ai], old_var, lo, hi)
                })
                .collect()
        });

        // Deterministic reduction in task/chunk order (= sequential candidate order).
        let mut bests: Vec<BestSplit> = vec![BestSplit::none(); plane.len()];
        for (&(ai, _, _), cand) in chunk_tasks.iter().zip(&chunk_bests) {
            let pi = tasks[ai].0;
            if cand.score > bests[pi].score {
                bests[pi] = *cand;
            }
        }
        // The sweep arrays borrow the leaves' cached projections; release them
        // before writing the chosen splits back.
        drop(arrays);
        for (pi, &(leaf, _)) in plane.iter().enumerate() {
            works[leaf as usize].as_mut().expect("leaf work").best = bests[pi];
        }
        counters
    }

    /// Best 1-Bucket increment for a small leaf.
    fn best_grid_increment(&self, work: &LeafWork) -> BestSplit {
        let (s_in, t_in, out) = self.leaf_estimates(work);
        let lm = &self.cfg.load_model;
        let w = self.cfg.workers;
        let (row_score, row_dup) =
            work.grid
                .score_add_row(w, lm.beta_input, lm.beta_output, s_in, t_in, out);
        let (col_score, col_dup) =
            work.grid
                .score_add_col(w, lm.beta_input, lm.beta_output, s_in, t_in, out);
        if row_score >= col_score {
            BestSplit {
                score: row_score,
                action: SplitAction::Grid { add_row: true },
                dup_increase: row_dup,
            }
        } else {
            BestSplit {
                score: col_score,
                action: SplitAction::Grid { add_row: false },
                dup_increase: col_dup,
            }
        }
    }

    /// Build the root leaf's cached projections by argsorting the samples once per
    /// dimension (every later leaf inherits its arrays through stable partitions).
    /// The band-shifted copies and the candidate boundaries are computed here too —
    /// like the value arrays, they are built exactly once per leaf.
    fn build_root_projections(&self) -> LeafProjections {
        let build = |d: usize| {
            let eps_lo = self.band.eps_low(d);
            let eps_hi = self.band.eps_high(d);
            // T is duplicated by T-splits with tests `t − ε_lo < x` / `t + ε_hi ≥ x`;
            // S only needs its (role-swapped) shifts under symmetric partitioning.
            let s = BandProj::gather(
                self.s_sample.argsort_by_dim(d),
                |i| self.s_sample.key(i as usize)[d],
                self.cfg.symmetric.then_some((eps_hi, eps_lo)),
            );
            let t = BandProj::gather(
                self.t_sample.argsort_by_dim(d),
                |i| self.t_sample.key(i as usize)[d],
                Some((eps_lo, eps_hi)),
            );
            let bounds = merge_dedup(&s.vals, &t.vals);
            DimProjection {
                s,
                t,
                o_s: SortedProj::gather(self.o_sample.argsort_by_s_dim(d), |i| {
                    self.o_sample.s_key(i as usize)[d]
                }),
                o_t: if self.cfg.symmetric {
                    SortedProj::gather(self.o_sample.argsort_by_t_dim(d), |i| {
                        self.o_sample.t_key(i as usize)[d]
                    })
                } else {
                    SortedProj::default()
                },
                bounds,
            }
        };
        let points = self.s_sample.len() + self.t_sample.len() + self.o_sample.len();
        let dims = if self.par.is_parallel() && self.dims > 1 && points >= MIN_PARALLEL_POINTS {
            self.par
                .run(|| (0..self.dims).into_par_iter().map(build).collect())
        } else {
            (0..self.dims).map(build).collect()
        };
        LeafProjections { dims }
    }

    /// Distribute a leaf's cached projections to the two children of a plane split
    /// with stable linear partitions: every output array stays sorted by its
    /// dimension's key, and the work is proportional to the leaf's sample size. The
    /// band-shifted columns travel in lockstep with the values, and each child's
    /// candidate boundaries are re-derived from its freshly split value arrays —
    /// so no later leaf visit materializes anything.
    fn split_projections(
        &self,
        proj: &LeafProjections,
        dim: usize,
        value: f64,
        kind: SplitKind,
        parallel: bool,
    ) -> (LeafProjections, LeafProjections) {
        let split_dim = |d: usize| -> (DimProjection, DimProjection) {
            let src = &proj.dims[d];
            let ((sl, sr), (tl, tr), (osl, osr), (otl, otr)) = match kind {
                SplitKind::TSplit => {
                    let s = partition_banded_exclusive(&src.s, |i| {
                        self.s_sample.key(i as usize)[dim] < value
                    });
                    let t = partition_banded_duplicating(&src.t, |i| {
                        let v = self.t_sample.key(i as usize)[dim];
                        let (lo, hi) = self.band.range_around_t(dim, v);
                        (lo < value, hi >= value)
                    });
                    let o_left = |i: u32| self.o_sample.s_key(i as usize)[dim] < value;
                    (
                        s,
                        t,
                        partition_exclusive(&src.o_s, o_left),
                        partition_exclusive(&src.o_t, o_left),
                    )
                }
                SplitKind::SSplit => {
                    let t = partition_banded_exclusive(&src.t, |i| {
                        self.t_sample.key(i as usize)[dim] < value
                    });
                    let s = partition_banded_duplicating(&src.s, |i| {
                        let v = self.s_sample.key(i as usize)[dim];
                        let (lo, hi) = self.band.range_around_s(dim, v);
                        (lo < value, hi >= value)
                    });
                    let o_left = |i: u32| self.o_sample.t_key(i as usize)[dim] < value;
                    (
                        s,
                        t,
                        partition_exclusive(&src.o_s, o_left),
                        partition_exclusive(&src.o_t, o_left),
                    )
                }
            };
            let bounds_l = merge_dedup(&sl.vals, &tl.vals);
            let bounds_r = merge_dedup(&sr.vals, &tr.vals);
            (
                DimProjection {
                    s: sl,
                    t: tl,
                    o_s: osl,
                    o_t: otl,
                    bounds: bounds_l,
                },
                DimProjection {
                    s: sr,
                    t: tr,
                    o_s: osr,
                    o_t: otr,
                    bounds: bounds_r,
                },
            )
        };
        let pairs: Vec<(DimProjection, DimProjection)> = if parallel && self.dims > 1 {
            self.par
                .run(|| (0..self.dims).into_par_iter().map(split_dim).collect())
        } else {
            (0..self.dims).map(split_dim).collect()
        };
        let mut left = LeafProjections {
            dims: Vec::with_capacity(self.dims),
        };
        let mut right = LeafProjections {
            dims: Vec::with_capacity(self.dims),
        };
        for (l, r) in pairs {
            left.dims.push(l);
            right.dims.push(r);
        }
        (left, right)
    }

    /// Borrow one dimension's sweep arrays from a leaf's cached projections. This
    /// materializes nothing: the sorted values, their band-shifted copies, and the
    /// candidate boundaries all live in the cache and were split to this leaf in
    /// lockstep when it was created.
    fn build_dim_arrays<'w>(&self, work: &'w LeafWork, region: &Rect, dim: usize) -> DimArrays<'w> {
        let proj = work
            .proj
            .as_ref()
            .expect("sweep scorer requires cached projections");
        let src = &proj.dims[dim];
        DimArrays {
            dim,
            lo: region.lo(dim),
            hi: region.hi(dim),
            s_vals: &src.s.vals,
            t_vals: &src.t.vals,
            t_minus: &src.t.minus,
            t_plus: &src.t.plus,
            o_s: &src.o_s.vals,
            s_minus: &src.s.minus,
            s_plus: &src.s.plus,
            o_t: &src.o_t.vals,
            bounds: &src.bounds,
        }
    }

    /// Score the candidate windows `[win_lo, win_hi)` of one dimension in a single
    /// sweep: every left/right count is maintained by a pointer that advances
    /// monotonically with the (non-decreasing) candidate values, so the whole chunk
    /// costs O(windows + points) with zero per-candidate binary searches. The counts,
    /// the arithmetic, and the strict-`>` comparison replicate the reference scorer
    /// exactly, so the returned best split is bit-identical to its choice.
    fn score_chunk(
        &self,
        a: &DimArrays<'_>,
        old_var: f64,
        win_lo: usize,
        win_hi: usize,
    ) -> BestSplit {
        let mut best = BestSplit::none();
        if win_lo >= win_hi {
            return best;
        }
        let lm = &self.cfg.load_model;
        let w = self.cfg.workers;
        let symmetric = self.cfg.symmetric;
        let ns = a.s_vals.len() as f64;
        let nt = a.t_vals.len() as f64;
        let no = a.o_s.len() as f64;

        // Initialize every pointer at the chunk's first candidate value; from there
        // each only advances (candidate midpoints never decrease).
        let x0 = 0.5 * (a.bounds[win_lo] + a.bounds[win_lo + 1]);
        let mut ps = a.s_vals.partition_point(|&v| v < x0);
        let mut ptm = a.t_minus.partition_point(|&v| v < x0);
        let mut ptp = a.t_plus.partition_point(|&v| v < x0);
        let mut pos = a.o_s.partition_point(|&v| v < x0);
        let (mut pt, mut psm, mut psp, mut pot) = if symmetric {
            (
                a.t_vals.partition_point(|&v| v < x0),
                a.s_minus.partition_point(|&v| v < x0),
                a.s_plus.partition_point(|&v| v < x0),
                a.o_t.partition_point(|&v| v < x0),
            )
        } else {
            (0, 0, 0, 0)
        };

        for k in win_lo..win_hi {
            let (b_lo, b_hi) = (a.bounds[k], a.bounds[k + 1]);
            let x = 0.5 * (b_lo + b_hi);
            if x <= a.lo || x >= a.hi || x <= b_lo || x >= b_hi {
                continue;
            }
            advance(a.s_vals, &mut ps, x);
            advance(a.t_minus, &mut ptm, x);
            advance(a.t_plus, &mut ptp, x);
            advance(a.o_s, &mut pos, x);

            // --- T-split: S partitioned at x, T duplicated near x. ---
            {
                let nsl = ps as f64;
                let nsr = ns - nsl;
                // T goes left iff t − ε_lo < x, right iff t + ε_hi ≥ x.
                let ntl = ptm as f64;
                let ntr = nt - ptp as f64;
                let nol = pos as f64;
                let nor = no - nol;
                let dup = self.wt * (ntl + ntr - nt);
                let l1 = partition_load(
                    lm.beta_input,
                    lm.beta_output,
                    self.ws * nsl + self.wt * ntl,
                    self.wo * nol,
                );
                let l2 = partition_load(
                    lm.beta_input,
                    lm.beta_output,
                    self.ws * nsr + self.wt * ntr,
                    self.wo * nor,
                );
                let reduction = old_var - variance_term(w, l1) - variance_term(w, l2);
                let score = SplitScore::new(reduction, dup);
                if score > best.score {
                    best = BestSplit {
                        score,
                        action: SplitAction::Plane {
                            dim: a.dim,
                            value: x,
                            kind: SplitKind::TSplit,
                        },
                        dup_increase: dup.max(0.0),
                    };
                }
            }

            // --- S-split: T partitioned at x, S duplicated near x. ---
            if symmetric {
                advance(a.t_vals, &mut pt, x);
                advance(a.s_minus, &mut psm, x);
                advance(a.s_plus, &mut psp, x);
                advance(a.o_t, &mut pot, x);
                let ntl = pt as f64;
                let ntr = nt - ntl;
                // S goes left iff s − ε_hi < x, right iff s + ε_lo ≥ x.
                let nsl = psm as f64;
                let nsr = ns - psp as f64;
                let nol = pot as f64;
                let nor = no - nol;
                let dup = self.ws * (nsl + nsr - ns);
                let l1 = partition_load(
                    lm.beta_input,
                    lm.beta_output,
                    self.ws * nsl + self.wt * ntl,
                    self.wo * nol,
                );
                let l2 = partition_load(
                    lm.beta_input,
                    lm.beta_output,
                    self.ws * nsr + self.wt * ntr,
                    self.wo * nor,
                );
                let reduction = old_var - variance_term(w, l1) - variance_term(w, l2);
                let score = SplitScore::new(reduction, dup);
                if score > best.score {
                    best = BestSplit {
                        score,
                        action: SplitAction::Plane {
                            dim: a.dim,
                            value: x,
                            kind: SplitKind::SSplit,
                        },
                        dup_increase: dup.max(0.0),
                    };
                }
            }
        }
        best
    }

    /// Best hyperplane split via the sweep-line scorer: one merged pass per allowed
    /// dimension over the leaf's cached projections.
    fn best_plane_split_sweep(
        &self,
        tree: &SplitTree,
        work: &LeafWork,
        domain: &Rect,
    ) -> (BestSplit, SplitSearchCounters) {
        let old_var = self.leaf_variance(work);
        let region = &tree.leaf(work.node).region;
        let mut best = BestSplit::none();
        let mut counters = SplitSearchCounters {
            leaves_scored: 1,
            ..SplitSearchCounters::default()
        };
        for dim in 0..self.dims {
            if !self.dim_allowed(tree, work.node, domain, dim) {
                continue;
            }
            let arrays = self.build_dim_arrays(work, region, dim);
            counters.dims_scanned += 1;
            counters.candidates_scored += arrays.windows() as u64;
            if arrays.windows() == 0 {
                continue;
            }
            let cand = self.score_chunk(&arrays, old_var, 0, arrays.windows());
            if cand.score > best.score {
                best = cand;
            }
        }
        (best, counters)
    }

    /// Best hyperplane split via the original binary-search implementation: the
    /// measured baseline of `benches/optimize.rs` and the oracle of the sweep-line
    /// property tests. Re-collects and sorts the leaf's projections on every visit
    /// and answers each candidate boundary with `partition_point` searches.
    fn best_plane_split_reference(
        &self,
        tree: &SplitTree,
        work: &LeafWork,
        domain: &Rect,
    ) -> (BestSplit, SplitSearchCounters) {
        let lm = &self.cfg.load_model;
        let w = self.cfg.workers;
        let old_var = self.leaf_variance(work);

        let mut best = BestSplit::none();
        let mut counters = SplitSearchCounters {
            leaves_scored: 1,
            ..SplitSearchCounters::default()
        };
        let region = &tree.leaf(work.node).region;

        for dim in 0..self.dims {
            if !self.dim_allowed(tree, work.node, domain, dim) {
                continue;
            }
            counters.dims_scanned += 1;
            // Sorted per-dimension value arrays for the leaf's sample points.
            let mut s_vals: Vec<f64> = work
                .s_pts
                .iter()
                .map(|&i| self.s_sample.key(i as usize)[dim])
                .collect();
            let mut t_vals: Vec<f64> = work
                .t_pts
                .iter()
                .map(|&i| self.t_sample.key(i as usize)[dim])
                .collect();
            let mut o_s_vals: Vec<f64> = work
                .o_pts
                .iter()
                .map(|&i| self.o_sample.s_key(i as usize)[dim])
                .collect();
            let mut o_t_vals: Vec<f64> = work
                .o_pts
                .iter()
                .map(|&i| self.o_sample.t_key(i as usize)[dim])
                .collect();
            s_vals.sort_unstable_by(f64::total_cmp);
            t_vals.sort_unstable_by(f64::total_cmp);
            o_s_vals.sort_unstable_by(f64::total_cmp);
            o_t_vals.sort_unstable_by(f64::total_cmp);

            // Candidate boundaries: midpoints between consecutive distinct values of the
            // combined input sample in this dimension.
            let mut combined: Vec<f64> = Vec::with_capacity(s_vals.len() + t_vals.len());
            combined.extend_from_slice(&s_vals);
            combined.extend_from_slice(&t_vals);
            combined.sort_unstable_by(f64::total_cmp);
            combined.dedup();
            counters.candidates_scored += combined.len().saturating_sub(1) as u64;
            if combined.len() < 2 {
                continue;
            }

            let ns = s_vals.len() as f64;
            let nt = t_vals.len() as f64;
            let no = o_s_vals.len() as f64;
            let eps_lo = self.band.eps_low(dim);
            let eps_hi = self.band.eps_high(dim);

            for pair in combined.windows(2) {
                let x = 0.5 * (pair[0] + pair[1]);
                if x <= region.lo(dim) || x >= region.hi(dim) || x <= pair[0] || x >= pair[1] {
                    continue;
                }

                // --- T-split: S partitioned at x, T duplicated near x. ---
                {
                    let nsl = s_vals.partition_point(|&v| v < x) as f64;
                    let nsr = ns - nsl;
                    // T goes left iff t − ε_lo < x, right iff t + ε_hi ≥ x.
                    let ntl = t_vals.partition_point(|&v| v - eps_lo < x) as f64;
                    let ntr = nt - t_vals.partition_point(|&v| v + eps_hi < x) as f64;
                    let nol = o_s_vals.partition_point(|&v| v < x) as f64;
                    let nor = no - nol;
                    let dup = self.wt * (ntl + ntr - nt);
                    let l1 = partition_load(
                        lm.beta_input,
                        lm.beta_output,
                        self.ws * nsl + self.wt * ntl,
                        self.wo * nol,
                    );
                    let l2 = partition_load(
                        lm.beta_input,
                        lm.beta_output,
                        self.ws * nsr + self.wt * ntr,
                        self.wo * nor,
                    );
                    let reduction = old_var - variance_term(w, l1) - variance_term(w, l2);
                    let score = SplitScore::new(reduction, dup);
                    if score > best.score {
                        best = BestSplit {
                            score,
                            action: SplitAction::Plane {
                                dim,
                                value: x,
                                kind: SplitKind::TSplit,
                            },
                            dup_increase: dup.max(0.0),
                        };
                    }
                }

                // --- S-split: T partitioned at x, S duplicated near x. ---
                if self.cfg.symmetric {
                    let ntl = t_vals.partition_point(|&v| v < x) as f64;
                    let ntr = nt - ntl;
                    // S goes left iff s − ε_hi < x, right iff s + ε_lo ≥ x.
                    let nsl = s_vals.partition_point(|&v| v - eps_hi < x) as f64;
                    let nsr = ns - s_vals.partition_point(|&v| v + eps_lo < x) as f64;
                    let nol = o_t_vals.partition_point(|&v| v < x) as f64;
                    let nor = no - nol;
                    let dup = self.ws * (nsl + nsr - ns);
                    let l1 = partition_load(
                        lm.beta_input,
                        lm.beta_output,
                        self.ws * nsl + self.wt * ntl,
                        self.wo * nol,
                    );
                    let l2 = partition_load(
                        lm.beta_input,
                        lm.beta_output,
                        self.ws * nsr + self.wt * ntr,
                        self.wo * nor,
                    );
                    let reduction = old_var - variance_term(w, l1) - variance_term(w, l2);
                    let score = SplitScore::new(reduction, dup);
                    if score > best.score {
                        best = BestSplit {
                            score,
                            action: SplitAction::Plane {
                                dim,
                                value: x,
                                kind: SplitKind::SSplit,
                            },
                            dup_increase: dup.max(0.0),
                        };
                    }
                }
            }
        }
        (best, counters)
    }

    /// Apply a hyperplane split: update the tree, distribute the parent's sample
    /// points over the two new leaves (plain lists and, under the sweep-line scorer,
    /// the cached sorted projections — both with stable linear partitions, so the
    /// work per split is proportional to the leaf's sample size). Returns the ids of
    /// the two new leaves; the caller refreshes their best splits.
    #[allow(clippy::too_many_arguments)]
    fn apply_plane_split(
        &self,
        tree: &mut SplitTree,
        works: &mut Vec<Option<LeafWork>>,
        leaf_id: NodeId,
        dim: usize,
        value: f64,
        kind: SplitKind,
        domain: &Rect,
    ) -> (NodeId, NodeId) {
        let parent = works[leaf_id as usize]
            .take()
            .expect("parent leaf work must exist");
        let (left_id, right_id) = tree.split_leaf(leaf_id, dim, value, kind);

        let mut left = LeafWork {
            node: left_id,
            s_pts: Vec::new(),
            t_pts: Vec::new(),
            o_pts: Vec::new(),
            proj: None,
            grid: BucketGrid::default(),
            is_small: false,
            best: BestSplit::none(),
            version: 0,
        };
        let mut right = LeafWork {
            node: right_id,
            s_pts: Vec::new(),
            t_pts: Vec::new(),
            o_pts: Vec::new(),
            proj: None,
            grid: BucketGrid::default(),
            is_small: false,
            best: BestSplit::none(),
            version: 0,
        };

        match kind {
            SplitKind::TSplit => {
                for &i in &parent.s_pts {
                    if self.s_sample.key(i as usize)[dim] < value {
                        left.s_pts.push(i);
                    } else {
                        right.s_pts.push(i);
                    }
                }
                for &i in &parent.t_pts {
                    let v = self.t_sample.key(i as usize)[dim];
                    let (lo, hi) = self.band.range_around_t(dim, v);
                    if lo < value {
                        left.t_pts.push(i);
                    }
                    if hi >= value {
                        right.t_pts.push(i);
                    }
                }
                for &i in &parent.o_pts {
                    if self.o_sample.s_key(i as usize)[dim] < value {
                        left.o_pts.push(i);
                    } else {
                        right.o_pts.push(i);
                    }
                }
            }
            SplitKind::SSplit => {
                for &i in &parent.t_pts {
                    if self.t_sample.key(i as usize)[dim] < value {
                        left.t_pts.push(i);
                    } else {
                        right.t_pts.push(i);
                    }
                }
                for &i in &parent.s_pts {
                    let v = self.s_sample.key(i as usize)[dim];
                    let (lo, hi) = self.band.range_around_s(dim, v);
                    if lo < value {
                        left.s_pts.push(i);
                    }
                    if hi >= value {
                        right.s_pts.push(i);
                    }
                }
                for &i in &parent.o_pts {
                    if self.o_sample.t_key(i as usize)[dim] < value {
                        left.o_pts.push(i);
                    } else {
                        right.o_pts.push(i);
                    }
                }
            }
        }

        left.is_small = self.is_small(tree, left_id, domain);
        right.is_small = self.is_small(tree, right_id, domain);

        // Distribute the cached projections to the non-small children (small leaves
        // never plane-split, so their arrays would be dead weight).
        if self.cfg.scorer == SplitScorer::SweepLine && !(left.is_small && right.is_small) {
            let proj = parent
                .proj
                .as_ref()
                .expect("regular leaf has cached projections");
            let parallel = self.par.is_parallel() && parent.points() >= MIN_PARALLEL_POINTS;
            let (lp, rp) = self.split_projections(proj, dim, value, kind, parallel);
            left.proj = (!left.is_small).then_some(lp);
            right.proj = (!right.is_small).then_some(rp);
        }

        Self::store_work(works, left);
        Self::store_work(works, right);
        (left_id, right_id)
    }

    /// Build one leaf's cost-ledger entry from its working state: the estimated
    /// input/output of one cell (a small leaf's 1-Bucket cells are identical) and
    /// the per-cell load under the configured model.
    fn ledger_entry(&self, work: &LeafWork) -> LedgerEntry {
        let lm = &self.cfg.load_model;
        let (s_in, t_in, out) = self.leaf_estimates(work);
        let grid = work.grid;
        let (input, output, count) = if grid.cells() == 1 {
            (s_in + t_in, out, 1)
        } else {
            (
                s_in / grid.rows as f64 + t_in / grid.cols as f64,
                out / grid.cells() as f64,
                grid.cells(),
            )
        };
        LedgerEntry {
            node: work.node,
            input,
            output,
            count,
            load: lm.load(input, output),
        }
    }

    /// Record the current iteration as the best partitioning seen iff its criterion
    /// improves on the incumbent. No tree is touched: the winner is just an
    /// iteration marker (plus its evaluation), and `finalize` rolls the grown tree
    /// back to it through the undo log — `counters.winner_tree_clones` stays 0 by
    /// construction and tests assert it.
    fn consider_winner(
        winner: &mut Option<Winner>,
        iteration: usize,
        eval: Evaluation,
        cfg: &RecPartConfig,
        counters: &mut EvalCounters,
    ) {
        let criterion = match cfg.termination {
            Termination::Theoretical => eval.dup_overhead.max(eval.load_overhead),
            Termination::CostModel { .. } => eval.predicted_time,
        };
        let better = winner
            .as_ref()
            .map(|w| criterion < w.criterion)
            .unwrap_or(true);
        if better {
            counters.winner_updates += 1;
            *winner = Some(Winner {
                iteration,
                eval,
                criterion,
            });
        }
    }

    fn finalize(&self, grown: GrownState, start: Instant) -> RecPartResult {
        let GrownState {
            tree: mut grown_tree,
            undo_log,
            winner,
            iterations,
            termination_reason,
            counters: split_search,
            eval_counters,
            split_search_seconds,
            evaluation_seconds,
            ..
        } = grown;
        // Roll the fully grown tree back to the winning iteration: revert every edit
        // recorded after it, newest first. `undo_split`'s arena-tail assertion makes
        // an out-of-order revert a panic rather than a silently wrong tree.
        for (iteration, edit) in undo_log.into_iter().rev() {
            if iteration <= winner.iteration {
                break;
            }
            match edit {
                TreeEdit::Plane { leaf, prior } => grown_tree.undo_split(leaf, prior),
                TreeEdit::Grid { leaf, prior } => grown_tree.set_leaf_grid(leaf, prior),
            }
        }
        let mut tree = grown_tree;
        tree.assign_partition_ids();
        let router = CompiledRouter::compile(&tree, self.band, self.cfg.seed);

        // Re-distribute the samples over the winning tree's leaves to obtain estimated
        // per-partition loads (used by the executor's partition→worker mapping). The
        // samples are re-routed through the compiled router in fixed-size chunks whose
        // layout depends only on the sample length — each chunk produces *integer*
        // per-partition counts, and integer addition is associative, so the combined
        // counts (and the loads derived from them in one multiplication per
        // partition) are bit-identical for every thread count.
        let lm = &self.cfg.load_model;
        let partitions = tree.num_partitions();
        let count_side = |t_side: bool| -> Vec<u64> {
            let sample = if t_side { self.t_sample } else { self.s_sample };
            let count_range = |(lo, hi): (usize, usize)| -> Vec<u64> {
                let mut counts = vec![0u64; partitions];
                let mut stack = router.count_stack();
                for i in lo..hi {
                    if t_side {
                        router.count_t(sample.key(i), i as u64, &mut stack, &mut counts);
                    } else {
                        router.count_s(sample.key(i), i as u64, &mut stack, &mut counts);
                    }
                }
                counts
            };
            let ranges = chunk_ranges(sample.len(), sample.len().div_ceil(FINALIZE_CHUNK_TUPLES));
            let parallel = self.par.is_parallel() && sample.len() >= MIN_PARALLEL_POINTS;
            let partials: Vec<Vec<u64>> = if parallel {
                self.par
                    .run(|| ranges.clone().into_par_iter().map(count_range).collect())
            } else {
                ranges.iter().map(|&r| count_range(r)).collect()
            };
            let mut counts = vec![0u64; partitions];
            for partial in partials {
                for (acc, c) in counts.iter_mut().zip(partial) {
                    *acc += c;
                }
            }
            counts
        };
        let s_counts = count_side(false);
        let t_counts = count_side(true);
        let loads: Vec<f64> = s_counts
            .iter()
            .zip(&t_counts)
            .map(|(&ns, &nt)| lm.beta_input * (self.ws * ns as f64 + self.wt * nt as f64))
            .collect();

        let leaves = tree.num_leaves();
        let report = OptimizationReport {
            strategy: self.cfg.strategy_name().to_string(),
            iterations,
            winning_iteration: winner.iteration,
            leaves,
            partitions,
            estimated_total_input: winner.eval.total_input,
            estimated_dup_overhead: winner.eval.dup_overhead,
            estimated_load_overhead: winner.eval.load_overhead,
            estimated_output: self.est_output,
            predicted_time: winner.eval.predicted_time,
            optimization_seconds: start.elapsed().as_secs_f64(),
            split_search_seconds,
            evaluation_seconds,
            split_search,
            evaluation: eval_counters,
            termination_reason,
        };
        let partitioner = SplitTreePartitioner {
            tree,
            band: self.band.clone(),
            seed: self.cfg.seed,
            name: self.cfg.strategy_name().to_string(),
            estimated_loads: loads,
            router,
        };
        RecPartResult {
            partitioner,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::LoadModel;
    use crate::sample::SampleConfig;
    use crate::split_tree::Node;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniform_relation(n: usize, dims: usize, lo: f64, hi: f64, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut r = Relation::with_capacity(dims, n);
        let mut key = vec![0.0; dims];
        for _ in 0..n {
            for k in key.iter_mut() {
                *k = rng.gen_range(lo..hi);
            }
            r.push(&key);
        }
        r
    }

    fn pareto_relation(n: usize, dims: usize, z: f64, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut r = Relation::with_capacity(dims, n);
        let mut key = vec![0.0; dims];
        for _ in 0..n {
            for k in key.iter_mut() {
                let u: f64 = rng.gen_range(0.0..1.0f64);
                *k = (1.0 - u).powf(-1.0 / z);
            }
            r.push(&key);
        }
        r
    }

    fn small_sample_config() -> SampleConfig {
        SampleConfig {
            input_sample_size: 1_000,
            output_sample_size: 500,
            output_probe_count: 400,
        }
    }

    fn exactly_once_check(
        partitioner: &SplitTreePartitioner,
        s: &Relation,
        t: &Relation,
        band: &BandCondition,
    ) {
        let mut s_parts = Vec::new();
        let mut t_parts = Vec::new();
        for (si, sk) in s.iter().enumerate() {
            s_parts.clear();
            partitioner.assign_s(&sk, si as u64, &mut s_parts);
            assert!(!s_parts.is_empty(), "every S-tuple must go somewhere");
            for (ti, tk) in t.iter().enumerate() {
                if !band.matches(&sk, &tk) {
                    continue;
                }
                t_parts.clear();
                partitioner.assign_t(&tk, ti as u64, &mut t_parts);
                let common = s_parts.iter().filter(|p| t_parts.contains(p)).count();
                assert_eq!(
                    common, 1,
                    "matching pair (S#{si}, T#{ti}) must meet in exactly one partition"
                );
            }
        }
    }

    #[test]
    fn optimize_uniform_1d_produces_enough_partitions() {
        let s = uniform_relation(4000, 1, 0.0, 100.0, 1);
        let t = uniform_relation(4000, 1, 0.0, 100.0, 2);
        let band = BandCondition::symmetric(&[0.2]);
        let cfg = RecPartConfig::new(8).with_sample(small_sample_config());
        let mut rng = StdRng::seed_from_u64(3);
        let result = RecPart::new(cfg).optimize(&s, &t, &band, &mut rng);
        assert!(
            result.partitioner.num_partitions() >= 8,
            "expected at least w partitions, got {}",
            result.partitioner.num_partitions()
        );
        assert!(result.report.iterations > 0);
        assert!(result.report.estimated_dup_overhead >= 0.0);
        assert!(result.report.optimization_seconds >= 0.0);
    }

    #[test]
    fn winner_bookkeeping_never_clones_the_tree() {
        // Skewed data under the cost-model termination keeps optimizing past the
        // winning iteration, so finalize must roll the tree back through the undo
        // log — and the rolled-back tree must still be a correct partitioning.
        let s = pareto_relation(400, 1, 1.5, 70);
        let t = pareto_relation(400, 1, 1.5, 71);
        let band = BandCondition::symmetric(&[2.0]);
        let cfg = RecPartConfig::new(6).with_sample(small_sample_config());
        let mut rng = StdRng::seed_from_u64(72);
        let result = RecPart::new(cfg).optimize(&s, &t, &band, &mut rng);
        let eval = &result.report.evaluation;
        assert_eq!(
            eval.winner_tree_clones, 0,
            "winner bookkeeping must never clone the split tree"
        );
        assert!(
            eval.winner_updates >= 1,
            "the initial evaluation always records a winner"
        );
        assert!(
            eval.winner_updates <= result.report.iterations as u64 + 1,
            "at most one winner update per evaluation"
        );
        assert!(result.report.winning_iteration <= result.report.iterations);
        exactly_once_check(&result.partitioner, &s, &t, &band);
    }

    #[test]
    fn exactly_once_on_uniform_2d() {
        let s = uniform_relation(400, 2, 0.0, 10.0, 4);
        let t = uniform_relation(400, 2, 0.0, 10.0, 5);
        let band = BandCondition::symmetric(&[0.3, 0.3]);
        let cfg = RecPartConfig::new(6)
            .with_sample(small_sample_config())
            .with_seed(11);
        let mut rng = StdRng::seed_from_u64(6);
        let result = RecPart::new(cfg).optimize(&s, &t, &band, &mut rng);
        exactly_once_check(&result.partitioner, &s, &t, &band);
    }

    #[test]
    fn exactly_once_with_symmetric_splits_on_skewed_data() {
        // Reverse-skew data exercises the S-split path.
        let s = pareto_relation(400, 1, 1.5, 7);
        let mut t = Relation::new(1);
        for key in pareto_relation(400, 1, 1.5, 8).iter() {
            t.push(&[1000.0 - key[0]]);
        }
        let band = BandCondition::symmetric(&[5.0]);
        let cfg = RecPartConfig::new(4).with_sample(small_sample_config());
        let mut rng = StdRng::seed_from_u64(9);
        let result = RecPart::new(cfg).optimize(&s, &t, &band, &mut rng);
        exactly_once_check(&result.partitioner, &s, &t, &band);
    }

    #[test]
    fn recpart_s_never_uses_s_splits() {
        let s = pareto_relation(2000, 2, 1.5, 10);
        let t = pareto_relation(2000, 2, 1.5, 11);
        let band = BandCondition::symmetric(&[0.5, 0.5]);
        let cfg = RecPartConfig::new(8)
            .without_symmetric()
            .with_sample(small_sample_config());
        let mut rng = StdRng::seed_from_u64(12);
        let result = RecPart::new(cfg).optimize(&s, &t, &band, &mut rng);
        assert_eq!(result.report.strategy, "RecPart-S");
        // Inspect the tree: no SSplit nodes may exist.
        let tree = result.partitioner.tree();
        for id in 0..tree.num_nodes() {
            if let Node::Inner(inner) = tree.node(id as NodeId) {
                assert_eq!(inner.kind, SplitKind::TSplit);
            }
        }
    }

    #[test]
    fn theoretical_termination_produces_low_duplication() {
        let s = uniform_relation(3000, 1, 0.0, 1000.0, 13);
        let t = uniform_relation(3000, 1, 0.0, 1000.0, 14);
        let band = BandCondition::symmetric(&[0.5]);
        let cfg = RecPartConfig::new(10)
            .with_theoretical_termination()
            .with_sample(small_sample_config());
        let mut rng = StdRng::seed_from_u64(15);
        let result = RecPart::new(cfg).optimize(&s, &t, &band, &mut rng);
        // On uniform data with a narrow band, near-zero duplication is achievable.
        assert!(
            result.report.estimated_dup_overhead < 0.15,
            "dup overhead too high: {}",
            result.report.estimated_dup_overhead
        );
    }

    #[test]
    fn empty_inputs_are_rejected() {
        let empty = Relation::new(1);
        let t = uniform_relation(10, 1, 0.0, 1.0, 16);
        let band = BandCondition::symmetric(&[0.1]);
        let cfg = RecPartConfig::new(2);
        let mut rng = StdRng::seed_from_u64(17);
        let err = RecPart::new(cfg.clone())
            .try_optimize(&empty, &t, &band, &mut rng)
            .unwrap_err();
        assert_eq!(err, RecPartError::EmptyRelation { side: "S" });
        let err = RecPart::new(cfg)
            .try_optimize(&t, &empty, &band, &mut rng)
            .unwrap_err();
        assert_eq!(err, RecPartError::EmptyRelation { side: "T" });
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let s = uniform_relation(10, 1, 0.0, 1.0, 18);
        let t = uniform_relation(10, 2, 0.0, 1.0, 19);
        let band = BandCondition::symmetric(&[0.1]);
        let cfg = RecPartConfig::new(2);
        let mut rng = StdRng::seed_from_u64(20);
        assert!(matches!(
            RecPart::new(cfg).try_optimize(&s, &t, &band, &mut rng),
            Err(RecPartError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn band_dimension_mismatch_is_rejected() {
        let s = uniform_relation(10, 2, 0.0, 1.0, 21);
        let t = uniform_relation(10, 2, 0.0, 1.0, 22);
        let band = BandCondition::symmetric(&[0.1]);
        let cfg = RecPartConfig::new(2);
        let mut rng = StdRng::seed_from_u64(23);
        assert!(matches!(
            RecPart::new(cfg).try_optimize(&s, &t, &band, &mut rng),
            Err(RecPartError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn wide_band_triggers_small_partitions_and_grid_mode() {
        // Band width comparable to the whole domain: the root quickly becomes "small" and
        // 1-Bucket style sub-partitioning kicks in.
        let s = uniform_relation(2000, 1, 0.0, 10.0, 24);
        let t = uniform_relation(2000, 1, 0.0, 10.0, 25);
        let band = BandCondition::symmetric(&[8.0]);
        let cfg = RecPartConfig::new(6).with_sample(small_sample_config());
        let mut rng = StdRng::seed_from_u64(26);
        let result = RecPart::new(cfg).optimize(&s, &t, &band, &mut rng);
        assert!(
            result.partitioner.num_partitions() > result.partitioner.tree().num_leaves(),
            "expected internal 1-Bucket cells (partitions {} vs leaves {})",
            result.partitioner.num_partitions(),
            result.partitioner.tree().num_leaves()
        );
        exactly_once_check(&result.partitioner, &s, &t, &band);
    }

    #[test]
    fn estimated_loads_have_partition_length() {
        let s = uniform_relation(1000, 1, 0.0, 100.0, 27);
        let t = uniform_relation(1000, 1, 0.0, 100.0, 28);
        let band = BandCondition::symmetric(&[1.0]);
        let cfg = RecPartConfig::new(4).with_sample(small_sample_config());
        let mut rng = StdRng::seed_from_u64(29);
        let result = RecPart::new(cfg).optimize(&s, &t, &band, &mut rng);
        let loads = result.partitioner.estimated_partition_loads().unwrap();
        assert_eq!(loads.len(), result.partitioner.num_partitions());
        assert!(loads.iter().all(|&l| l >= 0.0));
    }

    #[test]
    fn optimization_is_deterministic_given_seed() {
        let s = pareto_relation(2000, 2, 1.2, 30);
        let t = pareto_relation(2000, 2, 1.2, 31);
        let band = BandCondition::symmetric(&[0.2, 0.2]);
        let cfg = RecPartConfig::new(8).with_sample(small_sample_config());
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            RecPart::new(cfg.clone()).optimize(&s, &t, &band, &mut rng)
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.report.iterations, b.report.iterations);
        assert_eq!(
            a.partitioner.num_partitions(),
            b.partitioner.num_partitions()
        );
        assert_eq!(a.partitioner.tree(), b.partitioner.tree());
    }

    #[test]
    fn equi_join_band_is_supported() {
        let s = uniform_relation(1000, 1, 0.0, 50.0, 32);
        let t = uniform_relation(1000, 1, 0.0, 50.0, 33);
        let band = BandCondition::equi(1);
        let cfg = RecPartConfig::new(4).with_sample(small_sample_config());
        let mut rng = StdRng::seed_from_u64(34);
        let result = RecPart::new(cfg).optimize(&s, &t, &band, &mut rng);
        // With continuous uniform values exact matches are rare; duplication should be
        // essentially zero because band width is zero.
        assert!(result.report.estimated_dup_overhead < 0.01);
        exactly_once_check(&result.partitioner, &s, &t, &band);
    }

    #[test]
    fn custom_load_model_is_respected_in_report() {
        let s = uniform_relation(1000, 1, 0.0, 100.0, 35);
        let t = uniform_relation(1000, 1, 0.0, 100.0, 36);
        let band = BandCondition::symmetric(&[1.0]);
        let cfg = RecPartConfig::new(4)
            .with_load_model(LoadModel::new(1.0, 1.0))
            .with_sample(small_sample_config());
        let mut rng = StdRng::seed_from_u64(37);
        let result = RecPart::new(cfg).optimize(&s, &t, &band, &mut rng);
        assert!(result.report.predicted_time > 0.0);
    }

    /// Everything of two optimization results that must be bit-identical across
    /// scorers and thread counts (wall-clock fields are excluded by construction).
    fn assert_results_bit_identical(a: &RecPartResult, b: &RecPartResult, label: &str) {
        assert_eq!(
            a.report.evaluation, b.report.evaluation,
            "{label}: evaluation counters"
        );
        assert_results_bit_identical_except_eval_counters(a, b, label);
    }

    /// [`assert_results_bit_identical`] minus the evaluation work counters — the
    /// comparison used across *evaluators*, whose `ledger_leaf_visits` differ by
    /// design while everything they compute must not.
    fn assert_results_bit_identical_except_eval_counters(
        a: &RecPartResult,
        b: &RecPartResult,
        label: &str,
    ) {
        assert_eq!(a.partitioner.tree(), b.partitioner.tree(), "{label}: tree");
        assert_eq!(
            a.partitioner.num_partitions(),
            b.partitioner.num_partitions(),
            "{label}: partitions"
        );
        assert_eq!(
            a.partitioner.estimated_partition_loads(),
            b.partitioner.estimated_partition_loads(),
            "{label}: estimated loads"
        );
        assert_eq!(a.report.iterations, b.report.iterations, "{label}");
        assert_eq!(
            a.report.winning_iteration, b.report.winning_iteration,
            "{label}"
        );
        assert_eq!(a.report.leaves, b.report.leaves, "{label}");
        assert_eq!(a.report.split_search, b.report.split_search, "{label}");
        assert_eq!(
            a.report.estimated_total_input.to_bits(),
            b.report.estimated_total_input.to_bits(),
            "{label}: total input"
        );
        assert_eq!(
            a.report.predicted_time.to_bits(),
            b.report.predicted_time.to_bits(),
            "{label}: predicted time"
        );
        assert_eq!(
            a.report.termination_reason, b.report.termination_reason,
            "{label}"
        );
    }

    #[test]
    fn sweep_scorer_matches_binary_search_scorer_end_to_end() {
        let s = pareto_relation(3000, 2, 1.3, 40);
        let t = pareto_relation(3000, 2, 1.3, 41);
        let band = BandCondition::symmetric(&[0.3, 0.3]);
        for symmetric in [true, false] {
            let mut cfg = RecPartConfig::new(8)
                .with_sample(small_sample_config())
                .with_threads(1);
            cfg.symmetric = symmetric;
            let run = |scorer: SplitScorer| {
                let mut rng = StdRng::seed_from_u64(42);
                RecPart::new(cfg.clone().with_scorer(scorer)).optimize(&s, &t, &band, &mut rng)
            };
            let sweep = run(SplitScorer::SweepLine);
            let reference = run(SplitScorer::BinarySearch);
            assert_results_bit_identical(&sweep, &reference, "sweep vs binary-search");
            assert!(sweep.report.split_search.leaves_scored > 0);
            assert!(sweep.report.split_search.candidates_scored > 0);
        }
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let s = pareto_relation(4000, 1, 1.5, 50);
        let t = pareto_relation(4000, 1, 1.5, 51);
        let band = BandCondition::symmetric(&[0.05]);
        let cfg = RecPartConfig::new(16).with_sample(small_sample_config());
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(7);
            RecPart::new(cfg.clone().with_threads(threads)).optimize(&s, &t, &band, &mut rng)
        };
        let sequential = run(1);
        for threads in [0usize, 4] {
            let parallel = run(threads);
            assert_results_bit_identical(&sequential, &parallel, "threads");
        }
    }

    /// The incremental evaluator must change nothing the optimizer computes — only
    /// how much work evaluation does, which the `ledger_leaf_visits` counter proves:
    /// the full-recompute baseline revisits every leaf on every evaluation, the
    /// incremental ledger touches two leaves per plane split.
    #[test]
    fn incremental_evaluator_matches_full_recompute_end_to_end() {
        let s = pareto_relation(3000, 2, 1.3, 60);
        let t = pareto_relation(3000, 2, 1.3, 61);
        let band = BandCondition::symmetric(&[0.3, 0.3]);
        for symmetric in [true, false] {
            let mut cfg = RecPartConfig::new(8)
                .with_sample(small_sample_config())
                .with_threads(1);
            cfg.symmetric = symmetric;
            let run = |evaluator: Evaluator| {
                let mut rng = StdRng::seed_from_u64(62);
                RecPart::new(cfg.clone().with_evaluator(evaluator))
                    .optimize(&s, &t, &band, &mut rng)
            };
            let incremental = run(Evaluator::Incremental);
            let full = run(Evaluator::FullRecompute);
            assert_results_bit_identical_except_eval_counters(
                &incremental,
                &full,
                "incremental vs full recompute",
            );

            // Same evaluations, same LPT work — the mapping itself is exact.
            let (ie, fe) = (incremental.report.evaluation, full.report.evaluation);
            assert_eq!(ie.evaluations, fe.evaluations);
            assert_eq!(ie.lpt_cells, fe.lpt_cells);
            assert!(ie.evaluations > 1, "the run must have applied splits");
            // evaluate() no longer iterates all leaves per split: the incremental
            // ledger's visits are bounded by the deltas (≤ 2 per evaluation after
            // the initial build), while the full recompute pays leaves × evaluations.
            assert!(
                ie.ledger_leaf_visits <= 2 * ie.evaluations,
                "incremental ledger visits {} exceed the delta bound for {} evaluations",
                ie.ledger_leaf_visits,
                ie.evaluations
            );
            assert!(
                fe.ledger_leaf_visits > ie.ledger_leaf_visits,
                "full recompute must visit strictly more leaves ({} vs {})",
                fe.ledger_leaf_visits,
                ie.ledger_leaf_visits
            );
        }
    }

    mod eval_property {
        use super::*;
        use proptest::prelude::*;

        /// Drive a random sequence of best-splits through the optimizer state,
        /// maintaining one ledger incrementally, and after **every** applied split
        /// compare its `Evaluation` bit for bit against a ledger rebuilt from
        /// scratch (the [`Evaluator::FullRecompute`] oracle).
        fn compare_evaluations(
            s: &Relation,
            t: &Relation,
            band: &BandCondition,
            symmetric: bool,
            workers: usize,
            seed: u64,
        ) {
            let mut cfg = RecPartConfig::new(workers).with_sample(SampleConfig {
                input_sample_size: 400,
                output_sample_size: 200,
                output_probe_count: 200,
            });
            cfg.symmetric = symmetric;
            let mut rng = StdRng::seed_from_u64(seed);
            let s_sample = InputSample::draw(s, 200, &mut rng);
            let t_sample = InputSample::draw(t, 200, &mut rng);
            let o_sample = OutputSample::draw(s, t, band, &cfg.sample, &mut rng);
            let state = OptimizerState {
                cfg: &cfg,
                band,
                dims: band.dims(),
                s_len: s.len(),
                t_len: t.len(),
                ws: s_sample.weight(),
                wt: t_sample.weight(),
                wo: o_sample.weight(),
                est_output: o_sample.estimated_output(),
                s_sample: &s_sample,
                t_sample: &t_sample,
                o_sample: &o_sample,
                par: Parallelism::Sequential,
            };

            let mut tree = SplitTree::new(band.dims());
            let domain = state.domain_box();
            let root = tree.root();
            let root_small = state.is_small(&tree, root, &domain);
            let mut works: Vec<Option<LeafWork>> = Vec::new();
            OptimizerState::store_work(
                &mut works,
                LeafWork {
                    node: root,
                    s_pts: (0..s_sample.len() as u32).collect(),
                    t_pts: (0..t_sample.len() as u32).collect(),
                    o_pts: (0..o_sample.len() as u32).collect(),
                    proj: (!root_small).then(|| state.build_root_projections()),
                    grid: BucketGrid::default(),
                    is_small: root_small,
                    best: BestSplit::none(),
                    version: 0,
                },
            );
            state.refresh_leaves(&mut works, &tree, &[root], &domain);

            let mut ec = EvalCounters::default();
            let mut incremental = EvalLedger::default();
            incremental.rebuild(&state, &tree, &works, &mut ec);

            let compare = |incremental: &mut EvalLedger,
                           step: usize,
                           tree: &SplitTree,
                           works: &[Option<LeafWork>]| {
                let mut ec = EvalCounters::default();
                let a = incremental.evaluate(&state, &mut ec);
                let mut oracle = EvalLedger::default();
                oracle.rebuild(&state, tree, works, &mut ec);
                let b = oracle.evaluate(&state, &mut ec);
                for (x, y, what) in [
                    (a.total_input, b.total_input, "total_input"),
                    (a.dup_overhead, b.dup_overhead, "dup_overhead"),
                    (a.load_overhead, b.load_overhead, "load_overhead"),
                    (a.predicted_time, b.predicted_time, "predicted_time"),
                ] {
                    prop_assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "step {}: {} diverged ({} vs {})",
                        step,
                        what,
                        x,
                        y
                    );
                }
            };
            compare(&mut incremental, 0, &tree, &works);

            let mut pick = StdRng::seed_from_u64(seed ^ 0xE7A1);
            for step in 1..=12 {
                // Current splittable leaves, in depth-first order.
                let splittable: Vec<NodeId> = tree
                    .leaf_ids()
                    .into_iter()
                    .filter(|&id| {
                        works[id as usize]
                            .as_ref()
                            .is_some_and(|w| w.best.score.is_splittable())
                    })
                    .collect();
                if splittable.is_empty() {
                    break;
                }
                let leaf_id = splittable[pick.gen_range(0..splittable.len())];
                let best = works[leaf_id as usize].as_ref().unwrap().best;
                match best.action {
                    SplitAction::Plane { dim, value, kind } => {
                        let (l, r) = state.apply_plane_split(
                            &mut tree, &mut works, leaf_id, dim, value, kind, &domain,
                        );
                        incremental.apply_plane_split(
                            &state,
                            leaf_id,
                            works[l as usize].as_ref().unwrap(),
                            works[r as usize].as_ref().unwrap(),
                            &mut ec,
                        );
                        state.refresh_leaves(&mut works, &tree, &[l, r], &domain);
                    }
                    SplitAction::Grid { add_row } => {
                        let work = works[leaf_id as usize].as_mut().unwrap();
                        if add_row {
                            work.grid.rows += 1;
                        } else {
                            work.grid.cols += 1;
                        }
                        work.version += 1;
                        tree.set_leaf_grid(leaf_id, work.grid);
                        incremental.apply_grid_change(
                            &state,
                            works[leaf_id as usize].as_ref().unwrap(),
                            &mut ec,
                        );
                        state.refresh_leaves(&mut works, &tree, &[leaf_id], &domain);
                    }
                    SplitAction::None => break,
                }
                compare(&mut incremental, step, &tree, &works);
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Incremental `evaluate()` equals a full ledger recompute — bit for
            /// bit, after every split of a random split sequence — on skewed and
            /// uniform data, 1–3 dimensions, narrow and wide (grid-heavy) bands,
            /// both role configurations.
            #[test]
            fn incremental_evaluation_equals_full_recompute_on_random_split_sequences(
                seed in 0u64..5_000,
                dims in 1usize..4,
                eps in 0.05f64..30.0,
                skewed in 0u32..2,
                symmetric in 0u32..2,
                workers in 2usize..17,
            ) {
                let (s, t) = if skewed == 1 {
                    (
                        pareto_relation(600, dims, 1.4, seed),
                        pareto_relation(600, dims, 1.4, seed ^ 0xA5),
                    )
                } else {
                    (
                        uniform_relation(600, dims, 0.0, 60.0, seed),
                        uniform_relation(600, dims, 0.0, 60.0, seed ^ 0xA5),
                    )
                };
                let band = BandCondition::symmetric(&vec![eps; dims]);
                compare_evaluations(&s, &t, &band, symmetric == 1, workers, seed ^ 0x5EED);
            }
        }
    }

    mod sweep_property {
        use super::*;
        use proptest::prelude::*;

        /// Build an optimizer state over drawn samples and compare the sweep-line and
        /// binary-search scorers on the root leaf and (after applying the chosen
        /// split) on both children, exercising the incremental projection split.
        fn compare_scorers(
            s: &Relation,
            t: &Relation,
            band: &BandCondition,
            symmetric: bool,
            sample_seed: u64,
        ) {
            let mut cfg = RecPartConfig::new(6).with_sample(SampleConfig {
                input_sample_size: 400,
                output_sample_size: 200,
                output_probe_count: 200,
            });
            cfg.symmetric = symmetric;
            let mut rng = StdRng::seed_from_u64(sample_seed);
            let s_sample = InputSample::draw(s, 200, &mut rng);
            let t_sample = InputSample::draw(t, 200, &mut rng);
            let o_sample = OutputSample::draw(s, t, band, &cfg.sample, &mut rng);
            let state = OptimizerState {
                cfg: &cfg,
                band,
                dims: band.dims(),
                s_len: s.len(),
                t_len: t.len(),
                ws: s_sample.weight(),
                wt: t_sample.weight(),
                wo: o_sample.weight(),
                est_output: o_sample.estimated_output(),
                s_sample: &s_sample,
                t_sample: &t_sample,
                o_sample: &o_sample,
                par: Parallelism::Sequential,
            };

            let mut tree = SplitTree::new(band.dims());
            let domain = state.domain_box();
            let root = tree.root();
            let root_small = state.is_small(&tree, root, &domain);
            let mut works: Vec<Option<LeafWork>> = Vec::new();
            OptimizerState::store_work(
                &mut works,
                LeafWork {
                    node: root,
                    s_pts: (0..s_sample.len() as u32).collect(),
                    t_pts: (0..t_sample.len() as u32).collect(),
                    o_pts: (0..o_sample.len() as u32).collect(),
                    proj: (!root_small).then(|| state.build_root_projections()),
                    grid: BucketGrid::default(),
                    is_small: root_small,
                    best: BestSplit::none(),
                    version: 0,
                },
            );
            if root_small {
                return;
            }

            let work = works[root as usize].as_ref().unwrap();
            let (sweep, sweep_counters) = state.best_plane_split_sweep(&tree, work, &domain);
            let (reference, reference_counters) =
                state.best_plane_split_reference(&tree, work, &domain);
            prop_assert_eq!(sweep, reference, "root best split differs");
            prop_assert_eq!(sweep_counters, reference_counters, "root counters differ");

            // Apply the chosen split and compare the children, whose projections were
            // distributed incrementally rather than argsorted from scratch.
            if let SplitAction::Plane { dim, value, kind } = sweep.action {
                let (l, r) =
                    state.apply_plane_split(&mut tree, &mut works, root, dim, value, kind, &domain);
                for child in [l, r] {
                    let work = works[child as usize].as_ref().unwrap();
                    if work.is_small {
                        continue;
                    }
                    let (sweep, _) = state.best_plane_split_sweep(&tree, work, &domain);
                    let (reference, _) = state.best_plane_split_reference(&tree, work, &domain);
                    prop_assert_eq!(sweep, reference, "child best split differs");
                }
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// The sweep-line scorer returns the exact `BestSplit` (same score bits,
            /// same action, same duplication estimate) as the binary-search scorer on
            /// random leaves — skewed and uniform data, 1–3 dimensions, symmetric and
            /// asymmetric-role configurations, varying band widths.
            #[test]
            fn sweep_equals_binary_search_on_random_leaves(
                seed in 0u64..5_000,
                dims in 1usize..4,
                eps in 0.02f64..6.0,
                skewed in 0u32..2,
                symmetric in 0u32..2,
            ) {
                let (s, t) = if skewed == 1 {
                    (
                        pareto_relation(800, dims, 1.4, seed),
                        pareto_relation(800, dims, 1.4, seed ^ 0xA5),
                    )
                } else {
                    (
                        uniform_relation(800, dims, 0.0, 60.0, seed),
                        uniform_relation(800, dims, 0.0, 60.0, seed ^ 0xA5),
                    )
                };
                let band = BandCondition::symmetric(&vec![eps; dims]);
                compare_scorers(&s, &t, &band, symmetric == 1, seed ^ 0x5EED);
            }
        }
    }
}
