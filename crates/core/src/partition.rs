//! The [`Partitioner`] trait — the common interface of every distributed band-join
//! partitioning strategy (RecPart, 1-Bucket, Grid-ε, CSIO, …).
//!
//! A partitioner realizes Definition 1 of the paper: an assignment
//! `h : S ∪ T → 2^{1..P} \ ∅` of every input tuple to one or more *partitions* such that
//! every join result can be recovered by exactly one local join. Partitions are later
//! mapped onto the `w` workers (see `distsim::executor`); separating the two stages
//! mirrors how MapReduce/Spark map logical reduce partitions onto physical executors.

use crate::relation::Relation;
use std::ops::Range;

/// Identifier of a logical partition produced by a [`Partitioner`].
pub type PartitionId = u32;

/// Tuples per block when a block-oriented caller (e.g. the default
/// [`Partitioner::count_total_input`]) has no chunk layout of its own. Small enough
/// that the sink stays cache-resident, large enough to amortize the per-block setup.
pub const DEFAULT_BLOCK_TUPLES: usize = 4_096;

/// How the two-pass shuffle should feed a partitioner's assignments into the flat
/// per-partition arena (pass 2). Both policies produce **bit-identical** arenas —
/// the choice is purely a compute-vs-memory-traffic trade, so partitioners declare
/// which side of it they are on via [`Partitioner::scatter_policy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScatterPolicy {
    /// Pass 1 materializes each chunk's `(partition, tuple)` pair list (routing runs
    /// once); pass 2 replays the pairs into the arena. Right when routing a tuple is
    /// expensive relative to 8 bytes of buffer traffic — deep split-tree descent,
    /// or external per-tuple implementations of unknown cost (hence the default).
    #[default]
    PairList,
    /// Pass 1 only counts; pass 2 routes every block *again* through an offset-aware
    /// scatter sink that writes each tuple index straight to its final arena slot —
    /// no pair list exists at all. Right when routing is cheap batched arithmetic
    /// (closed-form grid/matrix cells), where re-deriving an assignment costs less
    /// than writing, re-reading, and copying it.
    Reroute,
}

/// Raw arena destination of a scatter-mode [`AssignmentSink`].
///
/// A plain wrapper so a sink holding it stays `Send`: the *creator* of a scatter
/// sink (see [`AssignmentSink::scattering`]) guarantees that concurrent sinks write
/// disjoint arena regions, which is what makes sharing the base pointer sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ArenaBase(*mut u32);
// SAFETY: the pointer is only dereferenced through `AssignmentSink::push`, whose
// writes stay within the cursor regions the unsafe `scattering` constructor's
// contract declares disjoint across threads.
unsafe impl Send for ArenaBase {}
unsafe impl Sync for ArenaBase {}

/// The mode-specific storage of an [`AssignmentSink`]. Deliberately **not** `Clone`:
/// duplicating a scatter sink would duplicate its raw arena pointer and live
/// cursors, letting safe code violate the disjoint-writes contract the unsafe
/// [`AssignmentSink::scattering`] constructor established.
#[derive(Debug, PartialEq, Eq)]
enum SinkState {
    /// Materialize `(partition, tuple)` pairs in routing order plus per-partition
    /// counts — the reference representation (tests, benches, the bit-identity
    /// oracle of the scatter path).
    Pairs {
        pairs: Vec<(PartitionId, u32)>,
        counts: Vec<u64>,
    },
    /// Count assignments per partition, materializing nothing — pass 1 of the
    /// two-pass count/scatter shuffle.
    Counting { counts: Vec<u64>, total: u64 },
    /// Write each tuple index straight to its final arena slot through per-partition
    /// write cursors — pass 2 of the two-pass shuffle. No pair list exists.
    Scatter {
        base: ArenaBase,
        arena_len: usize,
        cursors: Vec<usize>,
        written: u64,
    },
}

/// Per-tuple coverage tracker, active in debug builds when a caller asks for it:
/// Definition 1 requires `h(x) ≠ ∅` for *every* tuple, and a dropped tuple could
/// otherwise hide behind another tuple's duplicate in the aggregate counts.
#[cfg(debug_assertions)]
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Coverage {
    lo: u32,
    seen: Vec<bool>,
}

/// Flat output of the block routing API: the assignments of one block of tuples in
/// routing order, recorded in one of three modes (see [`SinkState`]):
///
/// * **pairs** ([`AssignmentSink::new`]) — materialized `(partition, tuple index)`
///   pairs plus per-partition counts; the reference representation.
/// * **counting** ([`AssignmentSink::counting`]) — per-partition counts only; pass 1
///   of the two-pass count/scatter shuffle (`distsim::shuffle`).
/// * **scatter** ([`AssignmentSink::scattering`]) — *offset-aware*: every tuple
///   index is written directly to its final slot of the flat per-partition arena
///   through per-partition write cursors; pass 2 of the shuffle. The materialized
///   pair list of the old pipeline does not exist on this path at all.
///
/// Block implementations ([`Partitioner::assign_s_block`] and friends) just call
/// [`AssignmentSink::push`] and never observe the mode. Assignments must be appended
/// grouped by tuple, tuples in ascending index order — the same order the per-tuple
/// [`Partitioner::assign_s`]/[`Partitioner::assign_t`] loop produces — so that
/// per-partition arena contents stay bit-identical to per-tuple routing.
/// (Not `Clone` — see [`SinkState`].)
#[derive(Debug, PartialEq, Eq)]
pub struct AssignmentSink {
    state: SinkState,
    #[cfg(debug_assertions)]
    coverage: Option<Coverage>,
}

impl Default for AssignmentSink {
    fn default() -> Self {
        AssignmentSink::new(0)
    }
}

impl AssignmentSink {
    /// An empty pair-recording sink for `num_partitions` partitions.
    pub fn new(num_partitions: usize) -> Self {
        AssignmentSink {
            state: SinkState::Pairs {
                pairs: Vec::new(),
                counts: vec![0; num_partitions],
            },
            #[cfg(debug_assertions)]
            coverage: None,
        }
    }

    /// An empty count-only sink for `num_partitions` partitions: records per-partition
    /// assignment counts and the total, materializing no pairs.
    pub fn counting(num_partitions: usize) -> Self {
        AssignmentSink {
            state: SinkState::Counting {
                counts: vec![0; num_partitions],
                total: 0,
            },
            #[cfg(debug_assertions)]
            coverage: None,
        }
    }

    /// An offset-aware scatter sink: [`AssignmentSink::push`] writes `tuple` to
    /// `base[cursors[partition]]` and advances that partition's cursor, so each
    /// assignment lands at its final arena position with no intermediate pair list.
    ///
    /// # Safety
    ///
    /// The caller must guarantee, for the lifetime of the sink, that
    ///
    /// * `base` points to an allocation of at least `arena_len` `u32` slots that
    ///   outlives the sink's pushes, and
    /// * for every partition `p`, the pushes this sink will receive for `p` fit in
    ///   `base[cursors[p]..]` within `arena_len`, and those cursor regions are
    ///   disjoint — from each other and from the regions of every other sink
    ///   concurrently writing into the same arena.
    ///
    /// The two-pass shuffle establishes this by prefix-summing pass-1 counts into
    /// exact per-(chunk, partition) bases; in debug builds every write is also
    /// bounds-checked against `arena_len`.
    pub unsafe fn scattering(base: *mut u32, arena_len: usize, cursors: Vec<usize>) -> Self {
        AssignmentSink {
            state: SinkState::Scatter {
                base: ArenaBase(base),
                arena_len,
                cursors,
                written: 0,
            },
            #[cfg(debug_assertions)]
            coverage: None,
        }
    }

    /// Clear the sink and re-size it for `num_partitions` partitions, keeping the
    /// buffer allocations so one sink can be reused across blocks. Supported by the
    /// pairs and counting modes (scatter sinks are single-use by construction).
    pub fn reset(&mut self, num_partitions: usize) {
        match &mut self.state {
            SinkState::Pairs { pairs, counts } => {
                pairs.clear();
                counts.clear();
                counts.resize(num_partitions, 0);
            }
            SinkState::Counting { counts, total } => {
                counts.clear();
                counts.resize(num_partitions, 0);
                *total = 0;
            }
            SinkState::Scatter { .. } => panic!("a scatter sink cannot be reset"),
        }
        #[cfg(debug_assertions)]
        {
            self.coverage = None;
        }
    }

    /// Pre-allocate space for `additional` more assignments (pairs mode only; the
    /// other modes allocate nothing per assignment).
    pub fn reserve(&mut self, additional: usize) {
        if let SinkState::Pairs { pairs, .. } = &mut self.state {
            pairs.reserve(additional);
        }
    }

    /// Record one assignment: tuple `tuple` goes to partition `partition`.
    #[inline]
    pub fn push(&mut self, partition: PartitionId, tuple: u32) {
        match &mut self.state {
            SinkState::Pairs { pairs, counts } => {
                pairs.push((partition, tuple));
                counts[partition as usize] += 1;
            }
            SinkState::Counting { counts, total } => {
                counts[partition as usize] += 1;
                *total += 1;
            }
            SinkState::Scatter {
                base,
                arena_len,
                cursors,
                written,
            } => {
                let slot = cursors[partition as usize];
                // Unconditional: `scatter_policy()` is safely overridable, so a
                // buggy or nondeterministic external partitioner could otherwise
                // turn this write into heap corruption from entirely safe code.
                // One predictable branch per push is noise next to the write.
                assert!(slot < *arena_len, "scatter write out of arena bounds");
                // SAFETY: `slot < arena_len` was just checked, and this sink
                // exclusively owns its cursor regions by the `scattering` contract.
                unsafe {
                    *base.0.add(slot) = tuple;
                }
                cursors[partition as usize] = slot + 1;
                *written += 1;
            }
        }
        #[cfg(debug_assertions)]
        if let Some(cov) = &mut self.coverage {
            let i = tuple.wrapping_sub(cov.lo) as usize;
            assert!(
                i < cov.seen.len(),
                "partitioner emitted tuple {tuple} outside the tracked block \
                 {}..{}",
                cov.lo,
                cov.lo as usize + cov.seen.len()
            );
            cov.seen[i] = true;
        }
    }

    /// The recorded `(partition, tuple index)` assignments, in routing order.
    ///
    /// # Panics
    /// Panics unless the sink is in pairs mode — the counting and scatter modes
    /// exist precisely to *not* materialize this list.
    pub fn pairs(&self) -> &[(PartitionId, u32)] {
        match &self.state {
            SinkState::Pairs { pairs, .. } => pairs,
            _ => panic!("pairs() requires a pairs-mode sink"),
        }
    }

    /// Per-partition assignment counts (`counts()[p]` = number of assignments
    /// recorded for partition `p`). Counts are `u64` on every platform: the
    /// out-of-core tier merges per-chunk counts across inputs larger than
    /// `u32::MAX` assignments, and a narrower accumulator would silently wrap.
    ///
    /// # Panics
    /// Panics for scatter sinks, which keep write cursors instead of counts.
    pub fn counts(&self) -> &[u64] {
        match &self.state {
            SinkState::Pairs { counts, .. } | SinkState::Counting { counts, .. } => counts,
            SinkState::Scatter { .. } => panic!("counts() is not tracked by a scatter sink"),
        }
    }

    /// Number of partitions the sink was sized for.
    pub fn num_partitions(&self) -> usize {
        match &self.state {
            SinkState::Pairs { counts, .. } | SinkState::Counting { counts, .. } => counts.len(),
            SinkState::Scatter { cursors, .. } => cursors.len(),
        }
    }

    /// Total number of recorded assignments.
    pub fn len(&self) -> usize {
        match &self.state {
            SinkState::Pairs { pairs, .. } => pairs.len(),
            SinkState::Counting { total, .. } => *total as usize,
            SinkState::Scatter { written, .. } => *written as usize,
        }
    }

    /// Whether no assignment was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Debug builds only: track per-tuple coverage of `rows` so
    /// [`AssignmentSink::covered_every_tuple`] can verify that the partitioner
    /// assigned every tuple of the block at least once (Definition 1).
    #[cfg(debug_assertions)]
    pub fn track_coverage(&mut self, rows: Range<usize>) {
        self.coverage = Some(Coverage {
            lo: rows.start as u32,
            seen: vec![false; rows.end - rows.start],
        });
    }

    /// Debug builds only: did every tracked tuple receive at least one assignment?
    #[cfg(debug_assertions)]
    pub fn covered_every_tuple(&self) -> bool {
        self.coverage
            .as_ref()
            .is_none_or(|cov| cov.seen.iter().all(|&s| s))
    }
}

/// A distributed band-join partitioning strategy.
///
/// Implementations must guarantee the *exactly-once* property: for every pair `(s, t)`
/// satisfying the band condition, exactly one partition receives both `s` and `t`.
/// This is what allows each worker to run an unfiltered local band-join on the input it
/// receives without producing duplicate results or missing results.
///
/// The `Send + Sync` supertraits are load-bearing: the executor's parallel map/shuffle
/// phase calls [`assign_s`](Partitioner::assign_s) / [`assign_t`](Partitioner::assign_t)
/// concurrently from many threads on one shared `&self`. Assignments must therefore be
/// pure functions of `(key, tuple_id)` and the partitioner's immutable state — no
/// interior mutability in the assignment path — which also keeps routing deterministic
/// for every thread count.
pub trait Partitioner: Send + Sync {
    /// Total number of logical partitions created by this partitioner.
    fn num_partitions(&self) -> usize;

    /// Append to `out` the partitions that must receive the S-tuple with key `key` and
    /// tuple id `tuple_id`.
    ///
    /// `tuple_id` is used by randomized partitioners (e.g. 1-Bucket) to derive a stable
    /// pseudo-random assignment; deterministic partitioners may ignore it.
    /// Implementations must clear nothing: callers pass a cleared buffer and reuse it
    /// between calls to avoid per-tuple allocations.
    fn assign_s(&self, key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>);

    /// Append to `out` the partitions that must receive the T-tuple with key `key`.
    fn assign_t(&self, key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>);

    /// Route the S-tuples `rows` of `rel` into `sink` — the block-oriented
    /// counterpart of [`Partitioner::assign_s`].
    ///
    /// Must record, for every tuple index `i` in `rows` in ascending order, exactly
    /// the partitions (ids **and** order) that `assign_s(rel.key(i), i as u64, ..)`
    /// would append, so block routing stays bit-identical to per-tuple routing.
    /// The default implementation loops the per-tuple method with one reused buffer;
    /// strategies with batched arithmetic (closed-form cell math, a compiled split
    /// tree) override it to skip the per-tuple dynamic dispatch entirely.
    fn assign_s_block(&self, rel: &Relation, rows: Range<usize>, sink: &mut AssignmentSink) {
        let mut buf: Vec<PartitionId> = Vec::new();
        for i in rows {
            buf.clear();
            self.assign_s(&rel.key(i), i as u64, &mut buf);
            for &p in &buf {
                sink.push(p, i as u32);
            }
        }
    }

    /// Route the T-tuples `rows` of `rel` into `sink` — the block-oriented
    /// counterpart of [`Partitioner::assign_t`]. Same contract as
    /// [`Partitioner::assign_s_block`].
    fn assign_t_block(&self, rel: &Relation, rows: Range<usize>, sink: &mut AssignmentSink) {
        let mut buf: Vec<PartitionId> = Vec::new();
        for i in rows {
            buf.clear();
            self.assign_t(&rel.key(i), i as u64, &mut buf);
            for &p in &buf {
                sink.push(p, i as u32);
            }
        }
    }

    /// Which pass-2 strategy the two-pass shuffle should use for this partitioner
    /// (see [`ScatterPolicy`]; both choices are bit-identical). Strategies whose
    /// block routing is cheap closed-form arithmetic should override this to
    /// [`ScatterPolicy::Reroute`] so the shuffle never materializes a pair list.
    fn scatter_policy(&self) -> ScatterPolicy {
        ScatterPolicy::PairList
    }

    /// A short human-readable name of the strategy (e.g. `"RecPart"`, `"1-Bucket"`).
    fn name(&self) -> &str;

    /// Optional estimate of the load share of each partition, used to map partitions
    /// onto workers before the actual per-partition loads are known. Returns `None` if
    /// the strategy has no estimate (the executor then falls back to measured loads).
    fn estimated_partition_loads(&self) -> Option<Vec<f64>> {
        None
    }

    /// Count the total number of partition assignments ("input including duplicates",
    /// the quantity `I` of the paper) this partitioner produces for the given inputs.
    ///
    /// The default implementation drives the block routing API over fixed-size
    /// blocks through a count-only sink (reused across blocks, so memory stays
    /// bounded and nothing is materialized); strategies with a cheaper closed form
    /// may override it.
    fn count_total_input(&self, s: &Relation, t: &Relation) -> u64 {
        let mut sink = AssignmentSink::counting(self.num_partitions().max(1));
        let mut total = 0u64;
        for (rel, is_s) in [(s, true), (t, false)] {
            let mut lo = 0;
            while lo < rel.len() {
                let hi = (lo + DEFAULT_BLOCK_TUPLES).min(rel.len());
                sink.reset(sink.num_partitions());
                if is_s {
                    self.assign_s_block(rel, lo..hi, &mut sink);
                } else {
                    self.assign_t_block(rel, lo..hi, &mut sink);
                }
                total += sink.len() as u64;
                lo = hi;
            }
        }
        total
    }
}

/// Adapter that hides a partitioner's block-routing overrides: every block call goes
/// through the trait's default per-tuple loop (`assign_s`/`assign_t` with one reused
/// buffer). This is the measured **per-tuple baseline** of `benches/assign.rs` and of
/// the `exp_parallel_smoke` block-routing gate — routing through it reproduces the
/// pre-block-API map phase exactly.
#[derive(Debug, Clone, Copy)]
pub struct PerTupleFallback<'a, P: ?Sized>(pub &'a P);

impl<P: Partitioner + ?Sized> Partitioner for PerTupleFallback<'_, P> {
    fn num_partitions(&self) -> usize {
        self.0.num_partitions()
    }
    fn assign_s(&self, key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>) {
        self.0.assign_s(key, tuple_id, out)
    }
    fn assign_t(&self, key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>) {
        self.0.assign_t(key, tuple_id, out)
    }
    // assign_s_block / assign_t_block / count_total_input / scatter_policy
    // deliberately NOT forwarded: they must take the trait's per-tuple default path
    // (and the pair-list scatter default that goes with per-tuple dispatch cost).
    fn name(&self) -> &str {
        self.0.name()
    }
    fn estimated_partition_loads(&self) -> Option<Vec<f64>> {
        self.0.estimated_partition_loads()
    }
}

/// Blanket implementation so boxed partitioners can be used wherever a partitioner is
/// expected.
impl<P: Partitioner + ?Sized> Partitioner for Box<P> {
    fn num_partitions(&self) -> usize {
        (**self).num_partitions()
    }
    fn assign_s(&self, key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>) {
        (**self).assign_s(key, tuple_id, out)
    }
    fn assign_t(&self, key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>) {
        (**self).assign_t(key, tuple_id, out)
    }
    fn assign_s_block(&self, rel: &Relation, rows: Range<usize>, sink: &mut AssignmentSink) {
        (**self).assign_s_block(rel, rows, sink)
    }
    fn assign_t_block(&self, rel: &Relation, rows: Range<usize>, sink: &mut AssignmentSink) {
        (**self).assign_t_block(rel, rows, sink)
    }
    fn scatter_policy(&self) -> ScatterPolicy {
        (**self).scatter_policy()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
    fn estimated_partition_loads(&self) -> Option<Vec<f64>> {
        (**self).estimated_partition_loads()
    }
    fn count_total_input(&self, s: &Relation, t: &Relation) -> u64 {
        (**self).count_total_input(s, t)
    }
}

/// A trivial partitioner that sends every tuple to a single partition.
///
/// Useful as a correctness baseline (`w = 1` runs) and in tests.
#[derive(Debug, Clone, Default)]
pub struct SinglePartition;

impl Partitioner for SinglePartition {
    fn num_partitions(&self) -> usize {
        1
    }
    fn assign_s(&self, _key: &[f64], _tuple_id: u64, out: &mut Vec<PartitionId>) {
        out.push(0);
    }
    fn assign_t(&self, _key: &[f64], _tuple_id: u64, out: &mut Vec<PartitionId>) {
        out.push(0);
    }
    fn assign_s_block(&self, _rel: &Relation, rows: Range<usize>, sink: &mut AssignmentSink) {
        for i in rows {
            sink.push(0, i as u32);
        }
    }
    fn assign_t_block(&self, rel: &Relation, rows: Range<usize>, sink: &mut AssignmentSink) {
        self.assign_s_block(rel, rows, sink)
    }
    fn scatter_policy(&self) -> ScatterPolicy {
        // Routing is a constant — re-deriving it is free.
        ScatterPolicy::Reroute
    }
    fn name(&self) -> &str {
        "SinglePartition"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_partition_assigns_everything_to_zero() {
        let p = SinglePartition;
        let mut out = Vec::new();
        p.assign_s(&[1.0, 2.0], 0, &mut out);
        assert_eq!(out, vec![0]);
        out.clear();
        p.assign_t(&[3.0], 17, &mut out);
        assert_eq!(out, vec![0]);
        assert_eq!(p.num_partitions(), 1);
        assert_eq!(p.name(), "SinglePartition");
        assert!(p.estimated_partition_loads().is_none());
    }

    #[test]
    fn count_total_input_default_impl() {
        let p = SinglePartition;
        let mut s = Relation::new(1);
        let mut t = Relation::new(1);
        for i in 0..10 {
            s.push(&[i as f64]);
        }
        for i in 0..7 {
            t.push(&[i as f64]);
        }
        assert_eq!(p.count_total_input(&s, &t), 17);
    }

    #[test]
    fn boxed_partitioner_delegates() {
        let p: Box<dyn Partitioner> = Box::new(SinglePartition);
        assert_eq!(p.num_partitions(), 1);
        assert_eq!(p.name(), "SinglePartition");
        let mut out = Vec::new();
        p.assign_s(&[0.0], 0, &mut out);
        assert_eq!(out, vec![0]);
        let mut r = Relation::new(1);
        r.push(&[3.0]);
        let mut sink = AssignmentSink::new(1);
        p.assign_s_block(&r, 0..1, &mut sink);
        assert_eq!(sink.pairs(), &[(0, 0)]);
    }

    /// Multi-assignment partitioner for exercising the default block loop.
    struct FanOut;
    impl Partitioner for FanOut {
        fn num_partitions(&self) -> usize {
            3
        }
        fn assign_s(&self, _key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>) {
            out.push((tuple_id % 3) as PartitionId);
            if tuple_id.is_multiple_of(2) {
                out.push(2);
            }
        }
        fn assign_t(&self, key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>) {
            self.assign_s(key, tuple_id, out);
        }
        fn name(&self) -> &str {
            "FanOut"
        }
    }

    #[test]
    fn default_block_impl_matches_per_tuple_ids_and_order() {
        let mut r = Relation::new(1);
        for i in 0..10 {
            r.push(&[i as f64]);
        }
        let p = FanOut;
        let mut sink = AssignmentSink::new(3);
        p.assign_s_block(&r, 0..r.len(), &mut sink);
        let mut expected = Vec::new();
        let mut buf = Vec::new();
        for i in 0..r.len() {
            buf.clear();
            p.assign_s(&r.key(i), i as u64, &mut buf);
            for &part in &buf {
                expected.push((part, i as u32));
            }
        }
        assert_eq!(sink.pairs(), &expected[..]);
        // Counts agree with the pair stream.
        for part in 0..3u32 {
            let n = expected.iter().filter(|&&(p0, _)| p0 == part).count();
            assert_eq!(sink.counts()[part as usize] as usize, n);
        }
        assert_eq!(sink.len(), expected.len());
        assert!(!sink.is_empty());
    }

    #[test]
    fn sink_reset_reuses_buffers() {
        let mut sink = AssignmentSink::new(2);
        sink.reserve(4);
        sink.push(1, 0);
        sink.push(0, 1);
        assert_eq!(sink.counts(), &[1, 1]);
        sink.reset(4);
        assert!(sink.is_empty());
        assert_eq!(sink.num_partitions(), 4);
        assert_eq!(sink.counts(), &[0, 0, 0, 0]);
    }

    #[test]
    fn counting_sink_tracks_counts_without_pairs() {
        let mut r = Relation::new(1);
        for i in 0..10 {
            r.push(&[i as f64]);
        }
        let p = FanOut;
        let mut pairs = AssignmentSink::new(3);
        let mut counting = AssignmentSink::counting(3);
        p.assign_s_block(&r, 0..r.len(), &mut pairs);
        p.assign_s_block(&r, 0..r.len(), &mut counting);
        assert_eq!(counting.counts(), pairs.counts());
        assert_eq!(counting.len(), pairs.len());
        assert_eq!(counting.num_partitions(), 3);
        counting.reset(2);
        assert!(counting.is_empty());
        assert_eq!(counting.counts(), &[0, 0]);
    }

    #[test]
    fn scatter_sink_writes_tuples_to_their_final_slots() {
        let mut r = Relation::new(1);
        for i in 0..9 {
            r.push(&[i as f64]);
        }
        let p = FanOut;
        // Reference layout from the pairs path: partition-major, routing order.
        let mut reference = AssignmentSink::new(3);
        p.assign_s_block(&r, 0..r.len(), &mut reference);
        let counts = reference.counts().to_vec();
        let mut offsets = [0usize; 4];
        for part in 0..3 {
            offsets[part + 1] = offsets[part] + counts[part] as usize;
        }
        let mut expected = vec![0u32; reference.len()];
        {
            let mut cursor = offsets[..3].to_vec();
            for &(part, i) in reference.pairs() {
                expected[cursor[part as usize]] = i;
                cursor[part as usize] += 1;
            }
        }
        // The offset-aware sink must produce the identical arena directly.
        let mut arena = vec![u32::MAX; reference.len()];
        // SAFETY: cursors are the exclusive per-partition offsets of `arena`, which
        // outlives the sink.
        let mut scatter = unsafe {
            AssignmentSink::scattering(arena.as_mut_ptr(), arena.len(), offsets[..3].to_vec())
        };
        p.assign_s_block(&r, 0..r.len(), &mut scatter);
        assert_eq!(scatter.len(), reference.len());
        assert_eq!(scatter.num_partitions(), 3);
        assert!(!scatter.is_empty());
        drop(scatter);
        assert_eq!(arena, expected);
    }

    #[test]
    #[should_panic(expected = "pairs() requires a pairs-mode sink")]
    fn counting_sink_has_no_pairs() {
        let sink = AssignmentSink::counting(1);
        let _ = sink.pairs();
    }

    #[test]
    #[should_panic(expected = "cannot be reset")]
    fn scatter_sink_cannot_be_reset() {
        let mut arena = vec![0u32; 1];
        let mut sink = unsafe { AssignmentSink::scattering(arena.as_mut_ptr(), 1, vec![0]) };
        sink.reset(1);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn coverage_tracker_flags_dropped_tuples() {
        /// Drops every odd tuple — a Definition 1 violation.
        struct Dropper;
        impl Partitioner for Dropper {
            fn num_partitions(&self) -> usize {
                1
            }
            fn assign_s(&self, _key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>) {
                if tuple_id.is_multiple_of(2) {
                    out.push(0);
                }
            }
            fn assign_t(&self, key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>) {
                self.assign_s(key, tuple_id, out);
            }
            fn name(&self) -> &str {
                "Dropper"
            }
        }
        let mut r = Relation::new(1);
        for i in 0..6 {
            r.push(&[i as f64]);
        }
        let mut ok = AssignmentSink::counting(1);
        ok.track_coverage(0..r.len());
        SinglePartition.assign_s_block(&r, 0..r.len(), &mut ok);
        assert!(ok.covered_every_tuple());
        let mut bad = AssignmentSink::counting(1);
        bad.track_coverage(0..r.len());
        Dropper.assign_s_block(&r, 0..r.len(), &mut bad);
        assert!(!bad.covered_every_tuple());
    }

    #[test]
    fn per_tuple_fallback_routes_identically_via_defaults() {
        let mut r = Relation::new(1);
        for i in 0..8 {
            r.push(&[i as f64]);
        }
        let p = FanOut;
        let fallback = PerTupleFallback(&p);
        assert_eq!(fallback.name(), "FanOut");
        assert_eq!(fallback.num_partitions(), 3);
        assert!(fallback.estimated_partition_loads().is_none());
        let mut a = AssignmentSink::new(3);
        let mut b = AssignmentSink::new(3);
        p.assign_t_block(&r, 0..r.len(), &mut a);
        fallback.assign_t_block(&r, 0..r.len(), &mut b);
        assert_eq!(a, b);
        assert_eq!(
            p.count_total_input(&r, &r),
            fallback.count_total_input(&r, &r)
        );
    }
}
