//! The [`Partitioner`] trait — the common interface of every distributed band-join
//! partitioning strategy (RecPart, 1-Bucket, Grid-ε, CSIO, …).
//!
//! A partitioner realizes Definition 1 of the paper: an assignment
//! `h : S ∪ T → 2^{1..P} \ ∅` of every input tuple to one or more *partitions* such that
//! every join result can be recovered by exactly one local join. Partitions are later
//! mapped onto the `w` workers (see `distsim::executor`); separating the two stages
//! mirrors how MapReduce/Spark map logical reduce partitions onto physical executors.

use crate::relation::Relation;

/// Identifier of a logical partition produced by a [`Partitioner`].
pub type PartitionId = u32;

/// A distributed band-join partitioning strategy.
///
/// Implementations must guarantee the *exactly-once* property: for every pair `(s, t)`
/// satisfying the band condition, exactly one partition receives both `s` and `t`.
/// This is what allows each worker to run an unfiltered local band-join on the input it
/// receives without producing duplicate results or missing results.
///
/// The `Send + Sync` supertraits are load-bearing: the executor's parallel map/shuffle
/// phase calls [`assign_s`](Partitioner::assign_s) / [`assign_t`](Partitioner::assign_t)
/// concurrently from many threads on one shared `&self`. Assignments must therefore be
/// pure functions of `(key, tuple_id)` and the partitioner's immutable state — no
/// interior mutability in the assignment path — which also keeps routing deterministic
/// for every thread count.
pub trait Partitioner: Send + Sync {
    /// Total number of logical partitions created by this partitioner.
    fn num_partitions(&self) -> usize;

    /// Append to `out` the partitions that must receive the S-tuple with key `key` and
    /// tuple id `tuple_id`.
    ///
    /// `tuple_id` is used by randomized partitioners (e.g. 1-Bucket) to derive a stable
    /// pseudo-random assignment; deterministic partitioners may ignore it.
    /// Implementations must clear nothing: callers pass a cleared buffer and reuse it
    /// between calls to avoid per-tuple allocations.
    fn assign_s(&self, key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>);

    /// Append to `out` the partitions that must receive the T-tuple with key `key`.
    fn assign_t(&self, key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>);

    /// A short human-readable name of the strategy (e.g. `"RecPart"`, `"1-Bucket"`).
    fn name(&self) -> &str;

    /// Optional estimate of the load share of each partition, used to map partitions
    /// onto workers before the actual per-partition loads are known. Returns `None` if
    /// the strategy has no estimate (the executor then falls back to measured loads).
    fn estimated_partition_loads(&self) -> Option<Vec<f64>> {
        None
    }

    /// Count the total number of partition assignments ("input including duplicates",
    /// the quantity `I` of the paper) this partitioner produces for the given inputs.
    ///
    /// The default implementation simply runs the assignment for every tuple; strategies
    /// with a cheaper closed form may override it.
    fn count_total_input(&self, s: &Relation, t: &Relation) -> u64 {
        let mut buf = Vec::new();
        let mut total = 0u64;
        for (i, key) in s.iter().enumerate() {
            buf.clear();
            self.assign_s(key, i as u64, &mut buf);
            total += buf.len() as u64;
        }
        for (i, key) in t.iter().enumerate() {
            buf.clear();
            self.assign_t(key, i as u64, &mut buf);
            total += buf.len() as u64;
        }
        total
    }
}

/// Blanket implementation so boxed partitioners can be used wherever a partitioner is
/// expected.
impl<P: Partitioner + ?Sized> Partitioner for Box<P> {
    fn num_partitions(&self) -> usize {
        (**self).num_partitions()
    }
    fn assign_s(&self, key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>) {
        (**self).assign_s(key, tuple_id, out)
    }
    fn assign_t(&self, key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>) {
        (**self).assign_t(key, tuple_id, out)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
    fn estimated_partition_loads(&self) -> Option<Vec<f64>> {
        (**self).estimated_partition_loads()
    }
    fn count_total_input(&self, s: &Relation, t: &Relation) -> u64 {
        (**self).count_total_input(s, t)
    }
}

/// A trivial partitioner that sends every tuple to a single partition.
///
/// Useful as a correctness baseline (`w = 1` runs) and in tests.
#[derive(Debug, Clone, Default)]
pub struct SinglePartition;

impl Partitioner for SinglePartition {
    fn num_partitions(&self) -> usize {
        1
    }
    fn assign_s(&self, _key: &[f64], _tuple_id: u64, out: &mut Vec<PartitionId>) {
        out.push(0);
    }
    fn assign_t(&self, _key: &[f64], _tuple_id: u64, out: &mut Vec<PartitionId>) {
        out.push(0);
    }
    fn name(&self) -> &str {
        "SinglePartition"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_partition_assigns_everything_to_zero() {
        let p = SinglePartition;
        let mut out = Vec::new();
        p.assign_s(&[1.0, 2.0], 0, &mut out);
        assert_eq!(out, vec![0]);
        out.clear();
        p.assign_t(&[3.0], 17, &mut out);
        assert_eq!(out, vec![0]);
        assert_eq!(p.num_partitions(), 1);
        assert_eq!(p.name(), "SinglePartition");
        assert!(p.estimated_partition_loads().is_none());
    }

    #[test]
    fn count_total_input_default_impl() {
        let p = SinglePartition;
        let mut s = Relation::new(1);
        let mut t = Relation::new(1);
        for i in 0..10 {
            s.push(&[i as f64]);
        }
        for i in 0..7 {
            t.push(&[i as f64]);
        }
        assert_eq!(p.count_total_input(&s, &t), 17);
    }

    #[test]
    fn boxed_partitioner_delegates() {
        let p: Box<dyn Partitioner> = Box::new(SinglePartition);
        assert_eq!(p.num_partitions(), 1);
        assert_eq!(p.name(), "SinglePartition");
        let mut out = Vec::new();
        p.assign_s(&[0.0], 0, &mut out);
        assert_eq!(out, vec![0]);
    }
}
