//! The [`Partitioner`] trait — the common interface of every distributed band-join
//! partitioning strategy (RecPart, 1-Bucket, Grid-ε, CSIO, …).
//!
//! A partitioner realizes Definition 1 of the paper: an assignment
//! `h : S ∪ T → 2^{1..P} \ ∅` of every input tuple to one or more *partitions* such that
//! every join result can be recovered by exactly one local join. Partitions are later
//! mapped onto the `w` workers (see `distsim::executor`); separating the two stages
//! mirrors how MapReduce/Spark map logical reduce partitions onto physical executors.

use crate::relation::Relation;
use std::ops::Range;

/// Identifier of a logical partition produced by a [`Partitioner`].
pub type PartitionId = u32;

/// Tuples per block when a block-oriented caller (e.g. the default
/// [`Partitioner::count_total_input`]) has no chunk layout of its own. Small enough
/// that the sink stays cache-resident, large enough to amortize the per-block setup.
pub const DEFAULT_BLOCK_TUPLES: usize = 4_096;

/// Flat output buffer of the block routing API: the `(partition, tuple index)`
/// assignments of one block of tuples in routing order, plus the per-partition
/// assignment counts.
///
/// This is the **counting pass** of the two-pass count/scatter routing pipeline: a
/// caller routes each contiguous input block once into a sink, prefix-sums the counts
/// of all blocks into exact arena offsets, and then scatters every block's `pairs()`
/// into its disjoint slices of one flat per-partition arena (see `distsim::shuffle`).
/// No per-tuple `Vec<PartitionId>` is allocated anywhere on that path.
///
/// Assignments must be appended grouped by tuple, tuples in ascending index order —
/// the same order the per-tuple [`Partitioner::assign_s`]/[`Partitioner::assign_t`]
/// loop produces — so that per-partition arena contents stay bit-identical to
/// per-tuple routing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AssignmentSink {
    pairs: Vec<(PartitionId, u32)>,
    counts: Vec<u32>,
}

impl AssignmentSink {
    /// An empty sink for `num_partitions` partitions.
    pub fn new(num_partitions: usize) -> Self {
        AssignmentSink {
            pairs: Vec::new(),
            counts: vec![0; num_partitions],
        }
    }

    /// Clear the sink and re-size it for `num_partitions` partitions, keeping the
    /// pair buffer's allocation so one sink can be reused across blocks.
    pub fn reset(&mut self, num_partitions: usize) {
        self.pairs.clear();
        self.counts.clear();
        self.counts.resize(num_partitions, 0);
    }

    /// Pre-allocate space for `additional` more assignments.
    pub fn reserve(&mut self, additional: usize) {
        self.pairs.reserve(additional);
    }

    /// Record one assignment: tuple `tuple` goes to partition `partition`.
    #[inline]
    pub fn push(&mut self, partition: PartitionId, tuple: u32) {
        self.pairs.push((partition, tuple));
        self.counts[partition as usize] += 1;
    }

    /// The recorded `(partition, tuple index)` assignments, in routing order.
    pub fn pairs(&self) -> &[(PartitionId, u32)] {
        &self.pairs
    }

    /// Per-partition assignment counts (`counts()[p]` = occurrences of `p` in
    /// [`AssignmentSink::pairs`]).
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Number of partitions the sink was sized for.
    pub fn num_partitions(&self) -> usize {
        self.counts.len()
    }

    /// Total number of recorded assignments.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no assignment was recorded.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// A distributed band-join partitioning strategy.
///
/// Implementations must guarantee the *exactly-once* property: for every pair `(s, t)`
/// satisfying the band condition, exactly one partition receives both `s` and `t`.
/// This is what allows each worker to run an unfiltered local band-join on the input it
/// receives without producing duplicate results or missing results.
///
/// The `Send + Sync` supertraits are load-bearing: the executor's parallel map/shuffle
/// phase calls [`assign_s`](Partitioner::assign_s) / [`assign_t`](Partitioner::assign_t)
/// concurrently from many threads on one shared `&self`. Assignments must therefore be
/// pure functions of `(key, tuple_id)` and the partitioner's immutable state — no
/// interior mutability in the assignment path — which also keeps routing deterministic
/// for every thread count.
pub trait Partitioner: Send + Sync {
    /// Total number of logical partitions created by this partitioner.
    fn num_partitions(&self) -> usize;

    /// Append to `out` the partitions that must receive the S-tuple with key `key` and
    /// tuple id `tuple_id`.
    ///
    /// `tuple_id` is used by randomized partitioners (e.g. 1-Bucket) to derive a stable
    /// pseudo-random assignment; deterministic partitioners may ignore it.
    /// Implementations must clear nothing: callers pass a cleared buffer and reuse it
    /// between calls to avoid per-tuple allocations.
    fn assign_s(&self, key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>);

    /// Append to `out` the partitions that must receive the T-tuple with key `key`.
    fn assign_t(&self, key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>);

    /// Route the S-tuples `rows` of `rel` into `sink` — the block-oriented
    /// counterpart of [`Partitioner::assign_s`].
    ///
    /// Must record, for every tuple index `i` in `rows` in ascending order, exactly
    /// the partitions (ids **and** order) that `assign_s(rel.key(i), i as u64, ..)`
    /// would append, so block routing stays bit-identical to per-tuple routing.
    /// The default implementation loops the per-tuple method with one reused buffer;
    /// strategies with batched arithmetic (closed-form cell math, a compiled split
    /// tree) override it to skip the per-tuple dynamic dispatch entirely.
    fn assign_s_block(&self, rel: &Relation, rows: Range<usize>, sink: &mut AssignmentSink) {
        let mut buf: Vec<PartitionId> = Vec::new();
        for i in rows {
            buf.clear();
            self.assign_s(rel.key(i), i as u64, &mut buf);
            for &p in &buf {
                sink.push(p, i as u32);
            }
        }
    }

    /// Route the T-tuples `rows` of `rel` into `sink` — the block-oriented
    /// counterpart of [`Partitioner::assign_t`]. Same contract as
    /// [`Partitioner::assign_s_block`].
    fn assign_t_block(&self, rel: &Relation, rows: Range<usize>, sink: &mut AssignmentSink) {
        let mut buf: Vec<PartitionId> = Vec::new();
        for i in rows {
            buf.clear();
            self.assign_t(rel.key(i), i as u64, &mut buf);
            for &p in &buf {
                sink.push(p, i as u32);
            }
        }
    }

    /// A short human-readable name of the strategy (e.g. `"RecPart"`, `"1-Bucket"`).
    fn name(&self) -> &str;

    /// Optional estimate of the load share of each partition, used to map partitions
    /// onto workers before the actual per-partition loads are known. Returns `None` if
    /// the strategy has no estimate (the executor then falls back to measured loads).
    fn estimated_partition_loads(&self) -> Option<Vec<f64>> {
        None
    }

    /// Count the total number of partition assignments ("input including duplicates",
    /// the quantity `I` of the paper) this partitioner produces for the given inputs.
    ///
    /// The default implementation drives the block routing API over fixed-size
    /// blocks (reusing one sink, so memory stays bounded); strategies with a cheaper
    /// closed form may override it.
    fn count_total_input(&self, s: &Relation, t: &Relation) -> u64 {
        let mut sink = AssignmentSink::new(self.num_partitions().max(1));
        let mut total = 0u64;
        for (rel, is_s) in [(s, true), (t, false)] {
            let mut lo = 0;
            while lo < rel.len() {
                let hi = (lo + DEFAULT_BLOCK_TUPLES).min(rel.len());
                sink.reset(sink.num_partitions());
                if is_s {
                    self.assign_s_block(rel, lo..hi, &mut sink);
                } else {
                    self.assign_t_block(rel, lo..hi, &mut sink);
                }
                total += sink.len() as u64;
                lo = hi;
            }
        }
        total
    }
}

/// Adapter that hides a partitioner's block-routing overrides: every block call goes
/// through the trait's default per-tuple loop (`assign_s`/`assign_t` with one reused
/// buffer). This is the measured **per-tuple baseline** of `benches/assign.rs` and of
/// the `exp_parallel_smoke` block-routing gate — routing through it reproduces the
/// pre-block-API map phase exactly.
#[derive(Debug, Clone, Copy)]
pub struct PerTupleFallback<'a, P: ?Sized>(pub &'a P);

impl<P: Partitioner + ?Sized> Partitioner for PerTupleFallback<'_, P> {
    fn num_partitions(&self) -> usize {
        self.0.num_partitions()
    }
    fn assign_s(&self, key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>) {
        self.0.assign_s(key, tuple_id, out)
    }
    fn assign_t(&self, key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>) {
        self.0.assign_t(key, tuple_id, out)
    }
    // assign_s_block / assign_t_block / count_total_input deliberately NOT forwarded:
    // they must take the trait's per-tuple default path.
    fn name(&self) -> &str {
        self.0.name()
    }
    fn estimated_partition_loads(&self) -> Option<Vec<f64>> {
        self.0.estimated_partition_loads()
    }
}

/// Blanket implementation so boxed partitioners can be used wherever a partitioner is
/// expected.
impl<P: Partitioner + ?Sized> Partitioner for Box<P> {
    fn num_partitions(&self) -> usize {
        (**self).num_partitions()
    }
    fn assign_s(&self, key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>) {
        (**self).assign_s(key, tuple_id, out)
    }
    fn assign_t(&self, key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>) {
        (**self).assign_t(key, tuple_id, out)
    }
    fn assign_s_block(&self, rel: &Relation, rows: Range<usize>, sink: &mut AssignmentSink) {
        (**self).assign_s_block(rel, rows, sink)
    }
    fn assign_t_block(&self, rel: &Relation, rows: Range<usize>, sink: &mut AssignmentSink) {
        (**self).assign_t_block(rel, rows, sink)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
    fn estimated_partition_loads(&self) -> Option<Vec<f64>> {
        (**self).estimated_partition_loads()
    }
    fn count_total_input(&self, s: &Relation, t: &Relation) -> u64 {
        (**self).count_total_input(s, t)
    }
}

/// A trivial partitioner that sends every tuple to a single partition.
///
/// Useful as a correctness baseline (`w = 1` runs) and in tests.
#[derive(Debug, Clone, Default)]
pub struct SinglePartition;

impl Partitioner for SinglePartition {
    fn num_partitions(&self) -> usize {
        1
    }
    fn assign_s(&self, _key: &[f64], _tuple_id: u64, out: &mut Vec<PartitionId>) {
        out.push(0);
    }
    fn assign_t(&self, _key: &[f64], _tuple_id: u64, out: &mut Vec<PartitionId>) {
        out.push(0);
    }
    fn assign_s_block(&self, _rel: &Relation, rows: Range<usize>, sink: &mut AssignmentSink) {
        for i in rows {
            sink.push(0, i as u32);
        }
    }
    fn assign_t_block(&self, rel: &Relation, rows: Range<usize>, sink: &mut AssignmentSink) {
        self.assign_s_block(rel, rows, sink)
    }
    fn name(&self) -> &str {
        "SinglePartition"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_partition_assigns_everything_to_zero() {
        let p = SinglePartition;
        let mut out = Vec::new();
        p.assign_s(&[1.0, 2.0], 0, &mut out);
        assert_eq!(out, vec![0]);
        out.clear();
        p.assign_t(&[3.0], 17, &mut out);
        assert_eq!(out, vec![0]);
        assert_eq!(p.num_partitions(), 1);
        assert_eq!(p.name(), "SinglePartition");
        assert!(p.estimated_partition_loads().is_none());
    }

    #[test]
    fn count_total_input_default_impl() {
        let p = SinglePartition;
        let mut s = Relation::new(1);
        let mut t = Relation::new(1);
        for i in 0..10 {
            s.push(&[i as f64]);
        }
        for i in 0..7 {
            t.push(&[i as f64]);
        }
        assert_eq!(p.count_total_input(&s, &t), 17);
    }

    #[test]
    fn boxed_partitioner_delegates() {
        let p: Box<dyn Partitioner> = Box::new(SinglePartition);
        assert_eq!(p.num_partitions(), 1);
        assert_eq!(p.name(), "SinglePartition");
        let mut out = Vec::new();
        p.assign_s(&[0.0], 0, &mut out);
        assert_eq!(out, vec![0]);
        let mut r = Relation::new(1);
        r.push(&[3.0]);
        let mut sink = AssignmentSink::new(1);
        p.assign_s_block(&r, 0..1, &mut sink);
        assert_eq!(sink.pairs(), &[(0, 0)]);
    }

    /// Multi-assignment partitioner for exercising the default block loop.
    struct FanOut;
    impl Partitioner for FanOut {
        fn num_partitions(&self) -> usize {
            3
        }
        fn assign_s(&self, _key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>) {
            out.push((tuple_id % 3) as PartitionId);
            if tuple_id.is_multiple_of(2) {
                out.push(2);
            }
        }
        fn assign_t(&self, key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>) {
            self.assign_s(key, tuple_id, out);
        }
        fn name(&self) -> &str {
            "FanOut"
        }
    }

    #[test]
    fn default_block_impl_matches_per_tuple_ids_and_order() {
        let mut r = Relation::new(1);
        for i in 0..10 {
            r.push(&[i as f64]);
        }
        let p = FanOut;
        let mut sink = AssignmentSink::new(3);
        p.assign_s_block(&r, 0..r.len(), &mut sink);
        let mut expected = Vec::new();
        let mut buf = Vec::new();
        for i in 0..r.len() {
            buf.clear();
            p.assign_s(r.key(i), i as u64, &mut buf);
            for &part in &buf {
                expected.push((part, i as u32));
            }
        }
        assert_eq!(sink.pairs(), &expected[..]);
        // Counts agree with the pair stream.
        for part in 0..3u32 {
            let n = expected.iter().filter(|&&(p0, _)| p0 == part).count();
            assert_eq!(sink.counts()[part as usize] as usize, n);
        }
        assert_eq!(sink.len(), expected.len());
        assert!(!sink.is_empty());
    }

    #[test]
    fn sink_reset_reuses_buffers() {
        let mut sink = AssignmentSink::new(2);
        sink.reserve(4);
        sink.push(1, 0);
        sink.push(0, 1);
        assert_eq!(sink.counts(), &[1, 1]);
        sink.reset(4);
        assert!(sink.is_empty());
        assert_eq!(sink.num_partitions(), 4);
        assert_eq!(sink.counts(), &[0, 0, 0, 0]);
    }

    #[test]
    fn per_tuple_fallback_routes_identically_via_defaults() {
        let mut r = Relation::new(1);
        for i in 0..8 {
            r.push(&[i as f64]);
        }
        let p = FanOut;
        let fallback = PerTupleFallback(&p);
        assert_eq!(fallback.name(), "FanOut");
        assert_eq!(fallback.num_partitions(), 3);
        assert!(fallback.estimated_partition_loads().is_none());
        let mut a = AssignmentSink::new(3);
        let mut b = AssignmentSink::new(3);
        p.assign_t_block(&r, 0..r.len(), &mut a);
        fallback.assign_t_block(&r, 0..r.len(), &mut b);
        assert_eq!(a, b);
        assert_eq!(
            p.count_total_input(&r, &r),
            fallback.count_total_input(&r, &r)
        );
    }
}
