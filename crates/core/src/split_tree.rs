//! The recursive split tree grown by RecPart.
//!
//! Each inner node splits the join-attribute space by a hyperplane `A_dim < value`.
//! A node is either a **T-split** (the default: S-tuples are routed to the single child
//! containing them, T-tuples are copied to every child whose region intersects their
//! ε-range) or an **S-split** (roles reversed — the "symmetric partitioning" extension of
//! Section 4.2). A path from the root to a leaf therefore defines a rectangular
//! partition of the space as the conjunction of the split predicates along the path
//! (Figure 3 / Figure 7 of the paper).
//!
//! Leaves that became *small* carry an internal 1-Bucket grid of `r × c` sub-partitions;
//! a regular leaf is simply a `1 × 1` grid.

use crate::band::BandCondition;
use crate::geometry::Rect;
use crate::partition::PartitionId;
use crate::small::{stable_hash, BucketGrid};
use serde::{Deserialize, Serialize};

/// Index of a node in the split tree's arena.
pub type NodeId = u32;

/// Which input is partitioned (and which is duplicated) at an inner node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitKind {
    /// S is partitioned without duplication; T-tuples within band width of the split
    /// boundary are copied to both children. This is the default split type.
    TSplit,
    /// T is partitioned without duplication; S-tuples near the boundary are duplicated.
    SSplit,
}

/// An inner node of the split tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InnerNode {
    /// The dimension the split predicate applies to.
    pub dim: usize,
    /// The split value: the left child covers `A_dim < value`, the right child
    /// `A_dim >= value`.
    pub value: f64,
    /// Which input is partitioned at this node.
    pub kind: SplitKind,
    /// Left child (satisfies the predicate `A_dim < value`).
    pub left: NodeId,
    /// Right child.
    pub right: NodeId,
}

/// A leaf of the split tree: one partition of the attribute space, possibly subdivided
/// into 1-Bucket cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeafNode {
    /// The rectangular region of attribute space covered by this leaf.
    pub region: Rect,
    /// The internal 1-Bucket grid (1×1 for regular leaves).
    pub grid: BucketGrid,
    /// First partition id owned by this leaf; the leaf owns `grid.cells()` consecutive
    /// ids starting here. Assigned by [`SplitTree::assign_partition_ids`].
    pub partition_base: PartitionId,
}

/// A node of the split tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// An inner (split) node.
    Inner(InnerNode),
    /// A leaf (partition).
    Leaf(LeafNode),
}

/// The recursive partitioning of the join-attribute space.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SplitTree {
    nodes: Vec<Node>,
    root: NodeId,
    dims: usize,
    num_partitions: usize,
    /// Leaf count, maintained on every split so the optimizer's per-iteration
    /// bookkeeping never has to walk the tree to know it. Not part of the
    /// serialized contract: deserialization recomputes it from the node arena
    /// (see the manual `Deserialize` below), so pre-existing serialized trees
    /// still load and a hand-edited count cannot go stale.
    num_leaves: usize,
}

/// Manual `Deserialize`: read the serialized fields the pre-PR 5 format carried and
/// **recompute** the maintained leaf count from the node arena instead of trusting
/// (or requiring) a serialized value. Counting arena leaves equals counting reachable
/// leaves for every tree this crate builds (the arena only ever grows by splitting a
/// reachable leaf) and stays robust for corrupt inputs, which a reachability walk
/// would not be.
impl serde::Deserialize for SplitTree {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for SplitTree"))?;
        let nodes: Vec<Node> = serde::Deserialize::from_value(serde::__get(map, "nodes")?)?;
        let num_leaves = nodes.iter().filter(|n| matches!(n, Node::Leaf(_))).count();
        Ok(SplitTree {
            num_leaves,
            root: serde::Deserialize::from_value(serde::__get(map, "root")?)?,
            dims: serde::Deserialize::from_value(serde::__get(map, "dims")?)?,
            num_partitions: serde::Deserialize::from_value(serde::__get(map, "num_partitions")?)?,
            nodes,
        })
    }
}

impl SplitTree {
    /// A tree with a single leaf covering the whole `dims`-dimensional space.
    pub fn new(dims: usize) -> Self {
        SplitTree {
            nodes: vec![Node::Leaf(LeafNode {
                region: Rect::unbounded(dims),
                grid: BucketGrid::default(),
                partition_base: 0,
            })],
            root: 0,
            dims,
            num_partitions: 1,
            num_leaves: 1,
        }
    }

    /// Dimensionality of the attribute space.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of nodes (inner + leaves).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Access a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// Access a leaf; panics if `id` is not a leaf.
    pub fn leaf(&self, id: NodeId) -> &LeafNode {
        match &self.nodes[id as usize] {
            Node::Leaf(l) => l,
            Node::Inner(_) => panic!("node {id} is not a leaf"),
        }
    }

    fn leaf_mut(&mut self, id: NodeId) -> &mut LeafNode {
        match &mut self.nodes[id as usize] {
            Node::Leaf(l) => l,
            Node::Inner(_) => panic!("node {id} is not a leaf"),
        }
    }

    /// Visit every leaf in depth-first order without materializing an id list
    /// (the optimizer re-evaluates the frontier after every split, so this runs on
    /// the hot path).
    pub fn for_each_leaf(&self, mut f: impl FnMut(NodeId, &LeafNode)) {
        let mut stack: Vec<NodeId> = Vec::with_capacity(32);
        stack.push(self.root);
        while let Some(id) = stack.pop() {
            match &self.nodes[id as usize] {
                Node::Leaf(leaf) => f(id, leaf),
                Node::Inner(inner) => {
                    stack.push(inner.right);
                    stack.push(inner.left);
                }
            }
        }
    }

    /// Ids of all leaves, in depth-first order.
    pub fn leaf_ids(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.for_each_leaf(|id, _| out.push(id));
        out
    }

    /// Number of leaves (`O(1)` — maintained by [`SplitTree::split_leaf`]).
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// Maximum depth of the tree (a single leaf has depth 1).
    pub fn depth(&self) -> usize {
        fn rec(tree: &SplitTree, id: NodeId) -> usize {
            match tree.node(id) {
                Node::Leaf(_) => 1,
                Node::Inner(inner) => 1 + rec(tree, inner.left).max(rec(tree, inner.right)),
            }
        }
        rec(self, self.root)
    }

    /// Split the leaf `leaf_id` with predicate `A_dim < value` of the given kind.
    /// Returns the ids of the two new leaves `(left, right)`.
    ///
    /// # Panics
    /// Panics if `leaf_id` is not a leaf, if `dim` is out of range, or if `value` lies
    /// outside the leaf's region.
    pub fn split_leaf(
        &mut self,
        leaf_id: NodeId,
        dim: usize,
        value: f64,
        kind: SplitKind,
    ) -> (NodeId, NodeId) {
        assert!(dim < self.dims, "split dimension out of range");
        let leaf = self.leaf(leaf_id).clone();
        let (left_region, right_region) = leaf.region.split(dim, value);
        let left_id = self.nodes.len() as NodeId;
        self.nodes.push(Node::Leaf(LeafNode {
            region: left_region,
            grid: BucketGrid::default(),
            partition_base: 0,
        }));
        let right_id = self.nodes.len() as NodeId;
        self.nodes.push(Node::Leaf(LeafNode {
            region: right_region,
            grid: BucketGrid::default(),
            partition_base: 0,
        }));
        self.nodes[leaf_id as usize] = Node::Inner(InnerNode {
            dim,
            value,
            kind,
            left: left_id,
            right: right_id,
        });
        self.num_leaves += 1;
        (left_id, right_id)
    }

    /// Revert the **most recent** [`SplitTree::split_leaf`]: restore `leaf_id` to the
    /// leaf it was before the split (`prior`, as captured by the caller just before
    /// splitting) and drop its two children from the arena. The arena is append-only
    /// and `split_leaf` pushes the children at its end, so un-splitting in LIFO order
    /// is a truncation — this is what lets the optimizer keep an undo log instead of
    /// cloning the whole tree whenever it records a new best partitioning.
    ///
    /// # Panics
    /// Panics if `leaf_id` is not an inner node whose children are the two most
    /// recently appended nodes (i.e. if the undo is attempted out of LIFO order).
    pub fn undo_split(&mut self, leaf_id: NodeId, prior: LeafNode) {
        let n = self.nodes.len();
        match &self.nodes[leaf_id as usize] {
            Node::Inner(inner) => {
                assert!(
                    n >= 2 && inner.left as usize == n - 2 && inner.right as usize == n - 1,
                    "undo_split must revert the most recent split (LIFO order)"
                );
                assert!(
                    matches!(self.nodes[n - 2], Node::Leaf(_))
                        && matches!(self.nodes[n - 1], Node::Leaf(_)),
                    "children of the split being undone must still be leaves"
                );
            }
            Node::Leaf(_) => panic!("node {leaf_id} is not a split node"),
        }
        self.nodes.truncate(n - 2);
        self.nodes[leaf_id as usize] = Node::Leaf(prior);
        self.num_leaves -= 1;
    }

    /// Replace the internal 1-Bucket grid of a (small) leaf.
    pub fn set_leaf_grid(&mut self, leaf_id: NodeId, grid: BucketGrid) {
        assert!(
            grid.rows >= 1 && grid.cols >= 1,
            "grid must be at least 1×1"
        );
        self.leaf_mut(leaf_id).grid = grid;
    }

    /// Assign consecutive partition ids to all leaf cells. Must be called after the tree
    /// structure is final and before routing tuples. Returns the total number of
    /// partitions.
    pub fn assign_partition_ids(&mut self) -> usize {
        let leaves = self.leaf_ids();
        let mut next: PartitionId = 0;
        for id in leaves {
            let leaf = self.leaf_mut(id);
            leaf.partition_base = next;
            next += leaf.grid.cells();
        }
        self.num_partitions = next as usize;
        self.num_partitions
    }

    /// Total number of partitions (valid after [`SplitTree::assign_partition_ids`]).
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Route an S-tuple through the tree, appending every partition id that must receive
    /// it (Algorithm 3 of the paper, S-side version).
    pub fn route_s(
        &self,
        key: &[f64],
        tuple_id: u64,
        band: &BandCondition,
        seed: u64,
        out: &mut Vec<PartitionId>,
    ) {
        debug_assert_eq!(key.len(), self.dims);
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            match &self.nodes[id as usize] {
                Node::Leaf(leaf) => {
                    let grid = &leaf.grid;
                    let row = grid.s_row(stable_hash(seed ^ ((id as u64) << 32), tuple_id));
                    let base = leaf.partition_base + row * grid.cols;
                    for j in 0..grid.cols {
                        out.push(base + j);
                    }
                }
                Node::Inner(inner) => match inner.kind {
                    SplitKind::TSplit => {
                        // S is partitioned: follow the single child containing the key.
                        if key[inner.dim] < inner.value {
                            stack.push(inner.left);
                        } else {
                            stack.push(inner.right);
                        }
                    }
                    SplitKind::SSplit => {
                        // S is duplicated: follow every child whose region intersects the
                        // ε-range around s (the T-values s can join with).
                        let (lo, hi) = band.range_around_s(inner.dim, key[inner.dim]);
                        if lo < inner.value {
                            stack.push(inner.left);
                        }
                        if hi >= inner.value {
                            stack.push(inner.right);
                        }
                    }
                },
            }
        }
    }

    /// Route a T-tuple through the tree (Algorithm 3 of the paper, T-side version).
    pub fn route_t(
        &self,
        key: &[f64],
        tuple_id: u64,
        band: &BandCondition,
        seed: u64,
        out: &mut Vec<PartitionId>,
    ) {
        debug_assert_eq!(key.len(), self.dims);
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            match &self.nodes[id as usize] {
                Node::Leaf(leaf) => {
                    let grid = &leaf.grid;
                    let col = grid.t_col(stable_hash(
                        seed ^ ((id as u64) << 32) ^ T_SIDE_SALT,
                        tuple_id,
                    ));
                    for i in 0..grid.rows {
                        out.push(leaf.partition_base + i * grid.cols + col);
                    }
                }
                Node::Inner(inner) => match inner.kind {
                    SplitKind::TSplit => {
                        // T is duplicated: every child whose region intersects the ε-range
                        // around t (the S-values t can join with).
                        let (lo, hi) = band.range_around_t(inner.dim, key[inner.dim]);
                        if lo < inner.value {
                            stack.push(inner.left);
                        }
                        if hi >= inner.value {
                            stack.push(inner.right);
                        }
                    }
                    SplitKind::SSplit => {
                        // T is partitioned.
                        if key[inner.dim] < inner.value {
                            stack.push(inner.left);
                        } else {
                            stack.push(inner.right);
                        }
                    }
                },
            }
        }
    }
}

/// A salt mixed into the hash for T-side routing so that S-row and T-column choices are
/// independent even for equal tuple ids. Shared with [`crate::router`], which bakes the
/// salted per-leaf seeds into its flat node arrays at compile time.
pub(crate) const T_SIDE_SALT: u64 = 0x9E37_79B9_0000_0001;

#[cfg(test)]
mod tests {
    use super::*;

    fn band1(eps: f64) -> BandCondition {
        BandCondition::symmetric(&[eps])
    }

    #[test]
    fn new_tree_is_single_leaf() {
        let tree = SplitTree::new(2);
        assert_eq!(tree.num_leaves(), 1);
        assert_eq!(tree.depth(), 1);
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.dims(), 2);
    }

    #[test]
    fn split_creates_two_leaves_with_disjoint_regions() {
        let mut tree = SplitTree::new(1);
        let (l, r) = tree.split_leaf(tree.root(), 0, 5.0, SplitKind::TSplit);
        assert_eq!(tree.num_leaves(), 2);
        assert_eq!(tree.depth(), 2);
        assert!(tree.leaf(l).region.contains(&[4.9]));
        assert!(!tree.leaf(l).region.contains(&[5.0]));
        assert!(tree.leaf(r).region.contains(&[5.0]));
    }

    #[test]
    fn undo_split_restores_the_exact_prior_tree() {
        let mut tree = SplitTree::new(1);
        let (l, _r) = tree.split_leaf(tree.root(), 0, 5.0, SplitKind::TSplit);
        tree.set_leaf_grid(l, BucketGrid { rows: 2, cols: 2 });
        let snapshot = tree.clone();

        // Split, then undo in LIFO order: the tree must be bit-identical again.
        let prior = tree.leaf(l).clone();
        tree.split_leaf(l, 0, 2.0, SplitKind::SSplit);
        assert_eq!(tree.num_leaves(), 3);
        tree.undo_split(l, prior);
        assert_eq!(tree, snapshot);
        assert_eq!(tree.num_leaves(), 2);

        // Two stacked splits revert in reverse order.
        let prior_l = tree.leaf(l).clone();
        let (ll, _lr) = tree.split_leaf(l, 0, 1.0, SplitKind::TSplit);
        let prior_ll = tree.leaf(ll).clone();
        tree.split_leaf(ll, 0, 0.5, SplitKind::TSplit);
        tree.undo_split(ll, prior_ll);
        tree.undo_split(l, prior_l);
        assert_eq!(tree, snapshot);
    }

    #[test]
    #[should_panic(expected = "LIFO order")]
    fn undo_split_rejects_out_of_order_reverts() {
        let mut tree = SplitTree::new(1);
        let prior_root = tree.leaf(tree.root()).clone();
        let (l, _r) = tree.split_leaf(tree.root(), 0, 5.0, SplitKind::TSplit);
        let _ = tree.split_leaf(l, 0, 2.0, SplitKind::TSplit);
        // The root's children are no longer the arena tail.
        tree.undo_split(tree.root(), prior_root);
    }

    #[test]
    fn partition_id_assignment_counts_grid_cells() {
        let mut tree = SplitTree::new(1);
        let (l, r) = tree.split_leaf(tree.root(), 0, 0.0, SplitKind::TSplit);
        tree.set_leaf_grid(l, BucketGrid { rows: 2, cols: 3 });
        tree.set_leaf_grid(r, BucketGrid { rows: 1, cols: 1 });
        let total = tree.assign_partition_ids();
        assert_eq!(total, 7);
        assert_eq!(tree.num_partitions(), 7);
        // The two leaves own disjoint consecutive ranges: l spans 6 ids, r spans 1,
        // in either assignment order.
        let lb = tree.leaf(l).partition_base;
        let rb = tree.leaf(r).partition_base;
        assert!(
            (lb == 0 && rb == 6) || (lb == 1 && rb == 0),
            "unexpected bases lb={lb} rb={rb}"
        );
    }

    #[test]
    fn t_split_routes_s_uniquely_and_duplicates_t_near_boundary() {
        let mut tree = SplitTree::new(1);
        tree.split_leaf(tree.root(), 0, 5.0, SplitKind::TSplit);
        tree.assign_partition_ids();
        let band = band1(1.0);
        let mut out = Vec::new();

        // S goes to exactly one side.
        tree.route_s(&[4.9], 0, &band, 7, &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        tree.route_s(&[5.0], 0, &band, 7, &mut out);
        assert_eq!(out.len(), 1);

        // T within band width of the boundary goes to both sides.
        out.clear();
        tree.route_t(&[5.5], 0, &band, 7, &mut out);
        assert_eq!(out.len(), 2, "T at 5.5 is within 1.0 of split 5.0");
        out.clear();
        tree.route_t(&[6.5], 0, &band, 7, &mut out);
        assert_eq!(out.len(), 1, "T at 6.5 is not within 1.0 of split 5.0");
        out.clear();
        tree.route_t(&[3.9], 0, &band, 7, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn s_split_reverses_roles() {
        let mut tree = SplitTree::new(1);
        tree.split_leaf(tree.root(), 0, 5.0, SplitKind::SSplit);
        tree.assign_partition_ids();
        let band = band1(1.0);
        let mut out = Vec::new();

        // T goes to exactly one side.
        tree.route_t(&[4.5], 0, &band, 7, &mut out);
        assert_eq!(out.len(), 1);
        // S near the boundary is duplicated.
        out.clear();
        tree.route_s(&[5.5], 0, &band, 7, &mut out);
        assert_eq!(out.len(), 2);
        out.clear();
        tree.route_s(&[7.0], 0, &band, 7, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn exactly_one_partition_receives_each_matching_pair() {
        // Mixed T-split and S-split tree in 1-D; verify the exactly-once property
        // exhaustively on a grid of values.
        let mut tree = SplitTree::new(1);
        let (left, right) = tree.split_leaf(tree.root(), 0, 5.0, SplitKind::TSplit);
        tree.split_leaf(left, 0, 2.0, SplitKind::SSplit);
        tree.split_leaf(right, 0, 8.0, SplitKind::TSplit);
        tree.assign_partition_ids();
        let band = band1(0.75);

        let values: Vec<f64> = (0..200).map(|i| i as f64 * 0.05).collect();
        let mut s_parts = Vec::new();
        let mut t_parts = Vec::new();
        for (si, &sv) in values.iter().enumerate() {
            tree.route_s(&[sv], si as u64, &band, 3, &mut s_parts);
            for (ti, &tv) in values.iter().enumerate() {
                if !band.matches(&[sv], &[tv]) {
                    continue;
                }
                t_parts.clear();
                tree.route_t(&[tv], ti as u64, &band, 3, &mut t_parts);
                let common = s_parts.iter().filter(|p| t_parts.contains(p)).count();
                assert_eq!(
                    common, 1,
                    "pair ({sv}, {tv}) must meet in exactly one partition, found {common}"
                );
            }
            s_parts.clear();
        }
    }

    #[test]
    fn small_leaf_grid_routing_meets_exactly_once() {
        let mut tree = SplitTree::new(1);
        tree.set_leaf_grid(tree.root(), BucketGrid { rows: 3, cols: 4 });
        tree.assign_partition_ids();
        assert_eq!(tree.num_partitions(), 12);
        let band = band1(10.0);
        let mut s_parts = Vec::new();
        let mut t_parts = Vec::new();
        for sid in 0..50u64 {
            s_parts.clear();
            tree.route_s(&[1.0], sid, &band, 11, &mut s_parts);
            assert_eq!(s_parts.len(), 4, "S copied to all cells of its row");
            for tid in 0..50u64 {
                t_parts.clear();
                tree.route_t(&[1.5], tid, &band, 11, &mut t_parts);
                assert_eq!(t_parts.len(), 3, "T copied to all cells of its column");
                let common = s_parts.iter().filter(|p| t_parts.contains(p)).count();
                assert_eq!(common, 1);
            }
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let mut tree = SplitTree::new(2);
        let (l, _) = tree.split_leaf(tree.root(), 0, 0.0, SplitKind::TSplit);
        tree.set_leaf_grid(l, BucketGrid { rows: 2, cols: 2 });
        tree.assign_partition_ids();
        let band = BandCondition::symmetric(&[0.5, 0.5]);
        let mut a = Vec::new();
        let mut b = Vec::new();
        tree.route_s(&[-1.0, 3.0], 42, &band, 5, &mut a);
        tree.route_s(&[-1.0, 3.0], 42, &band, 5, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn maintained_leaf_count_matches_the_walk() {
        let mut tree = SplitTree::new(2);
        let (l, r) = tree.split_leaf(tree.root(), 0, 5.0, SplitKind::TSplit);
        tree.split_leaf(l, 1, 2.0, SplitKind::SSplit);
        tree.split_leaf(r, 0, 8.0, SplitKind::TSplit);
        assert_eq!(tree.num_leaves(), 4);
        assert_eq!(tree.num_leaves(), tree.leaf_ids().len());
    }

    /// Deserialization recomputes the leaf count — round-trips are exact, and the
    /// pre-PR 5 serialized format (no `num_leaves` entry) still loads. Exercised at
    /// the serde `Value` layer because the unbounded root region's ±∞ bounds are
    /// not representable in the JSON text format.
    #[test]
    fn deserialize_recomputes_leaf_count_and_accepts_legacy_blobs() {
        let mut tree = SplitTree::new(1);
        let (l, _) = tree.split_leaf(tree.root(), 0, 5.0, SplitKind::TSplit);
        tree.split_leaf(l, 0, 2.0, SplitKind::SSplit);
        tree.assign_partition_ids();
        let value = serde::Serialize::to_value(&tree);
        let back: SplitTree = serde::Deserialize::from_value(&value).expect("round-trip");
        assert_eq!(back, tree);
        assert_eq!(back.num_leaves(), 3);
        // Strip the maintained field to emulate a blob written before it existed.
        let serde::Value::Map(entries) = value else {
            panic!("tree must serialize to a map");
        };
        let legacy: Vec<(String, serde::Value)> = entries
            .into_iter()
            .filter(|(name, _)| name != "num_leaves")
            .collect();
        assert_eq!(legacy.len(), 4, "legacy blob carries the pre-PR 5 fields");
        let from_legacy: SplitTree =
            serde::Deserialize::from_value(&serde::Value::Map(legacy)).expect("legacy blob");
        assert_eq!(from_legacy, tree);
    }

    #[test]
    #[should_panic(expected = "not a leaf")]
    fn splitting_inner_node_panics() {
        let mut tree = SplitTree::new(1);
        tree.split_leaf(tree.root(), 0, 0.0, SplitKind::TSplit);
        tree.split_leaf(tree.root(), 0, 1.0, SplitKind::TSplit);
    }
}
