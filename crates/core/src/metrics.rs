//! Success measures for a partitioning: total input `I`, max worker load `L_m`, and
//! their overheads over the Lemma-1 lower bounds.
//!
//! The paper evaluates every partitioning by how close it comes to
//!
//! * `I_lb = |S| + |T|` — duplication overhead `(I − I_lb) / I_lb`, and
//! * `L₀ = (β₂(|S|+|T|) + β₃·|S ⋈ T|) / w` — load overhead `(L_m − L₀) / L₀`
//!
//! (Figure 4 / Figure 10 plot exactly these two axes).

use crate::load::{relative_overhead, total_input_lower_bound, LoadModel};
use serde::{Deserialize, Serialize};

/// Work counters of the RecPart split search, reported alongside the optimization
/// wall-clock so "optimizes in under a second" claims can be decomposed into how much
/// scoring work the optimizer actually did.
///
/// Every counter is a deterministic function of the samples and the configuration —
/// **not** of the thread count or the [`crate::config::SplitScorer`] implementation —
/// so equal counters across `threads = 1 / 0 / n` runs are part of the optimizer's
/// bit-identity contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitSearchCounters {
    /// Number of leaf best-split refreshes (root + two per applied plane split + one
    /// per grid increment).
    pub leaves_scored: u64,
    /// Number of (leaf, dimension) projections scanned for candidate boundaries.
    pub dims_scanned: u64,
    /// Number of candidate boundaries scored across all leaves and dimensions.
    pub candidates_scored: u64,
}

impl SplitSearchCounters {
    /// Accumulate another refresh's counters.
    pub fn merge(&mut self, other: SplitSearchCounters) {
        self.leaves_scored += other.leaves_scored;
        self.dims_scanned += other.dims_scanned;
        self.candidates_scored += other.candidates_scored;
    }
}

/// Work counters of the RecPart post-split evaluation, reported alongside the
/// split-search counters so "evaluate() is no longer O(all leaves) per split" is an
/// auditable claim rather than a code-reading exercise.
///
/// Every counter is a deterministic function of the samples, the configuration, and
/// the chosen [`crate::config::Evaluator`] — **not** of the thread count or the
/// [`crate::config::SplitScorer`] — so equal counters across `threads = 1 / 0 / n`
/// runs are part of the optimizer's bit-identity contract. `ledger_leaf_visits` is
/// the counter that separates the evaluators: the incremental evaluator touches only
/// the leaves a split changed (two per plane split, one per grid increment or
/// rebuild), while the full-recompute baseline revisits every leaf on every
/// evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalCounters {
    /// Number of evaluations run (one per applied split, plus the initial state).
    pub evaluations: u64,
    /// Number of leaves whose ledger entry was (re)built. Incremental: one for the
    /// root plus the split deltas. Full recompute: the number of leaves of the tree,
    /// once per evaluation.
    pub ledger_leaf_visits: u64,
    /// Number of partition cells the LPT worker mapping assigned across all
    /// evaluations (identical for both evaluators — the mapping itself is exact).
    pub lpt_cells: u64,
    /// Number of times the optimizer recorded a new best partitioning (the winner
    /// criterion improved). Deterministic for a given input and configuration.
    pub winner_updates: u64,
    /// Number of whole-tree clones taken while recording winners. The undo-log
    /// winner bookkeeping never clones — this stays `0` and is asserted on in
    /// tests; it exists so a regression back to clone-per-improvement is caught
    /// by counters rather than profiles.
    pub winner_tree_clones: u64,
}

impl EvalCounters {
    /// Accumulate another evaluation's counters.
    pub fn merge(&mut self, other: EvalCounters) {
        self.evaluations += other.evaluations;
        self.ledger_leaf_visits += other.ledger_leaf_visits;
        self.lpt_cells += other.lpt_cells;
        self.winner_updates += other.winner_updates;
        self.winner_tree_clones += other.winner_tree_clones;
    }
}

/// Outcome counters of a plan cache serving a query stream: how many queries
/// were answered from a cached plan (exact key match), how many reused a wider
/// cached plan through band subsumption, how many had to build a plan cold, and
/// what the eviction pressure looked like.
///
/// The accounting invariant `hits + subsumed_hits + misses == queries served`
/// holds by construction and is asserted in the serving tests; every counter is
/// deterministic for a given query stream (no wall-clock input).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanCacheCounters {
    /// Queries answered by a cached plan whose signature matched exactly.
    pub hits: u64,
    /// Queries answered by a cached plan with a per-dimension wider band
    /// (ε_query ≤ ε_plan in every dimension): partitioning and arenas reused,
    /// zero new shuffles.
    pub subsumed_hits: u64,
    /// Queries that found no usable plan and built one through the full
    /// optimize–compile–shuffle pipeline.
    pub misses: u64,
    /// Cached plans evicted to make room under the arena-byte capacity.
    pub evictions: u64,
    /// Arena bytes (both sides' CSR indexes) currently held by cached plans.
    pub arena_bytes_cached: u64,
}

impl PlanCacheCounters {
    /// Total queries that consulted the cache.
    pub fn queries(&self) -> u64 {
        self.hits + self.subsumed_hits + self.misses
    }

    /// Fraction of queries served without building a plan (1.0 = all warm).
    pub fn warm_rate(&self) -> f64 {
        let q = self.queries();
        if q == 0 {
            0.0
        } else {
            (self.hits + self.subsumed_hits) as f64 / q as f64
        }
    }
}

/// Input and output volume assigned to one worker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerLoad {
    /// Number of input tuples (including duplicates) received by the worker.
    pub input: u64,
    /// Number of output tuples produced by the worker.
    pub output: u64,
}

impl WorkerLoad {
    /// The weighted load of the worker under the given model.
    pub fn load(&self, model: &LoadModel) -> f64 {
        model.load(self.input as f64, self.output as f64)
    }
}

/// Quality statistics of a concrete partitioning, measured after (simulated) execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitioningStats {
    /// Name of the partitioning strategy that produced this result.
    pub strategy: String,
    /// Number of workers.
    pub workers: usize,
    /// `|S|`.
    pub s_len: u64,
    /// `|T|`.
    pub t_len: u64,
    /// Exact size of the join result `|S ⋈ T|`.
    pub output_len: u64,
    /// Total input including duplicates (the paper's `I`).
    pub total_input: u64,
    /// Input tuples on the most loaded worker (the paper's `I_m`).
    pub max_worker_input: u64,
    /// Output tuples on the most loaded worker (the paper's `O_m`).
    pub max_worker_output: u64,
    /// Max worker load `L_m = max_i (β₂ I_i + β₃ O_i)`.
    pub max_worker_load: f64,
    /// The load model used.
    pub load_model: LoadModel,
    /// Per-worker loads (input/output), indexed by worker.
    pub per_worker: Vec<WorkerLoad>,
}

impl PartitioningStats {
    /// Build the statistics from per-worker loads.
    ///
    /// The "most loaded worker" (whose `I_m`/`O_m` are reported) is the worker with the
    /// maximum weighted load, matching how the paper reports `I_m` and `O_m` jointly.
    pub fn from_worker_loads(
        strategy: impl Into<String>,
        s_len: u64,
        t_len: u64,
        output_len: u64,
        per_worker: Vec<WorkerLoad>,
        load_model: LoadModel,
    ) -> Self {
        assert!(!per_worker.is_empty(), "need at least one worker");
        let total_input: u64 = per_worker.iter().map(|w| w.input).sum();
        let (max_idx, max_load) = per_worker
            .iter()
            .enumerate()
            .map(|(i, w)| (i, w.load(&load_model)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("loads are finite"))
            .expect("non-empty worker list");
        PartitioningStats {
            strategy: strategy.into(),
            workers: per_worker.len(),
            s_len,
            t_len,
            output_len,
            total_input,
            max_worker_input: per_worker[max_idx].input,
            max_worker_output: per_worker[max_idx].output,
            max_worker_load: max_load,
            load_model,
            per_worker,
        }
    }

    /// Lower bound on total input: `|S| + |T|`.
    pub fn input_lower_bound(&self) -> u64 {
        total_input_lower_bound(self.s_len as usize, self.t_len as usize) as u64
    }

    /// Lower bound `L₀` on the max worker load.
    pub fn load_lower_bound(&self) -> f64 {
        self.load_model.max_load_lower_bound(
            self.s_len as usize,
            self.t_len as usize,
            self.output_len as usize,
            self.workers,
        )
    }

    /// Relative input-duplication overhead `(I − (|S|+|T|)) / (|S|+|T|)`
    /// (the x-axis of Figure 4).
    pub fn duplication_overhead(&self) -> f64 {
        relative_overhead(self.total_input as f64, self.input_lower_bound() as f64)
    }

    /// Relative max-load overhead `(L_m − L₀) / L₀` (the y-axis of Figure 4).
    pub fn load_overhead(&self) -> f64 {
        relative_overhead(self.max_worker_load, self.load_lower_bound())
    }

    /// The paper's near-optimality criterion: the larger of the two overheads.
    pub fn max_overhead(&self) -> f64 {
        self.duplication_overhead().max(self.load_overhead())
    }

    /// Load imbalance: max worker load divided by mean worker load (1.0 = perfect).
    /// Reported in Table 14 of the paper.
    pub fn imbalance(&self) -> f64 {
        let mean: f64 = self
            .per_worker
            .iter()
            .map(|w| w.load(&self.load_model))
            .sum::<f64>()
            / self.workers as f64;
        if mean == 0.0 {
            1.0
        } else {
            self.max_worker_load / mean
        }
    }

    /// Number of duplicate input assignments created by the partitioning.
    pub fn duplicates(&self) -> u64 {
        self.total_input.saturating_sub(self.input_lower_bound())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(per_worker: Vec<WorkerLoad>, s: u64, t: u64, o: u64) -> PartitioningStats {
        PartitioningStats::from_worker_loads("test", s, t, o, per_worker, LoadModel::new(4.0, 1.0))
    }

    #[test]
    fn split_search_counters_merge() {
        let mut a = SplitSearchCounters {
            leaves_scored: 1,
            dims_scanned: 2,
            candidates_scored: 30,
        };
        a.merge(SplitSearchCounters {
            leaves_scored: 4,
            dims_scanned: 5,
            candidates_scored: 6,
        });
        assert_eq!(
            a,
            SplitSearchCounters {
                leaves_scored: 5,
                dims_scanned: 7,
                candidates_scored: 36,
            }
        );
        assert_eq!(SplitSearchCounters::default().leaves_scored, 0);
    }

    #[test]
    fn eval_counters_merge() {
        let mut a = EvalCounters {
            evaluations: 1,
            ledger_leaf_visits: 2,
            lpt_cells: 3,
            winner_updates: 4,
            winner_tree_clones: 0,
        };
        a.merge(EvalCounters {
            evaluations: 10,
            ledger_leaf_visits: 20,
            lpt_cells: 30,
            winner_updates: 40,
            winner_tree_clones: 0,
        });
        assert_eq!(
            a,
            EvalCounters {
                evaluations: 11,
                ledger_leaf_visits: 22,
                lpt_cells: 33,
                winner_updates: 44,
                winner_tree_clones: 0,
            }
        );
        assert_eq!(EvalCounters::default().evaluations, 0);
    }

    #[test]
    fn plan_cache_counters_accounting() {
        let c = PlanCacheCounters::default();
        assert_eq!(c.queries(), 0);
        assert_eq!(c.warm_rate(), 0.0);
        let c = PlanCacheCounters {
            hits: 3,
            subsumed_hits: 1,
            misses: 4,
            evictions: 2,
            arena_bytes_cached: 1024,
        };
        assert_eq!(c.queries(), 8);
        assert!((c.warm_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn totals_and_max_worker() {
        let stats = stats_with(
            vec![
                WorkerLoad {
                    input: 100,
                    output: 10,
                },
                WorkerLoad {
                    input: 80,
                    output: 200,
                },
            ],
            100,
            80,
            210,
        );
        assert_eq!(stats.total_input, 180);
        // Worker 1 has load 4·80 + 200 = 520 > worker 0's 4·100 + 10 = 410.
        assert_eq!(stats.max_worker_input, 80);
        assert_eq!(stats.max_worker_output, 200);
        assert!((stats.max_worker_load - 520.0).abs() < 1e-12);
        assert_eq!(stats.workers, 2);
    }

    #[test]
    fn perfect_partitioning_has_zero_overheads() {
        // Two workers, no duplicates, perfectly balanced.
        let stats = stats_with(
            vec![
                WorkerLoad {
                    input: 100,
                    output: 50,
                },
                WorkerLoad {
                    input: 100,
                    output: 50,
                },
            ],
            120,
            80,
            100,
        );
        assert_eq!(stats.duplicates(), 0);
        assert!(stats.duplication_overhead().abs() < 1e-12);
        assert!(stats.load_overhead().abs() < 1e-12);
        assert!((stats.imbalance() - 1.0).abs() < 1e-12);
        assert!(stats.max_overhead().abs() < 1e-12);
    }

    #[test]
    fn duplication_overhead_counts_extra_copies() {
        let stats = stats_with(
            vec![
                WorkerLoad {
                    input: 150,
                    output: 0,
                },
                WorkerLoad {
                    input: 150,
                    output: 0,
                },
            ],
            100,
            100,
            0,
        );
        assert_eq!(stats.duplicates(), 100);
        assert!((stats.duplication_overhead() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn load_overhead_example_from_paper() {
        // "for Lm = 11 and L0 = 10 we obtain 0.1"
        let model = LoadModel::new(1.0, 0.0);
        let stats = PartitioningStats::from_worker_loads(
            "x",
            10,
            10,
            0,
            vec![
                WorkerLoad {
                    input: 11,
                    output: 0,
                },
                WorkerLoad {
                    input: 9,
                    output: 0,
                },
            ],
            model,
        );
        assert!((stats.load_lower_bound() - 10.0).abs() < 1e-12);
        assert!((stats.load_overhead() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn imbalance_of_skewed_assignment() {
        let stats = stats_with(
            vec![
                WorkerLoad {
                    input: 300,
                    output: 0,
                },
                WorkerLoad {
                    input: 100,
                    output: 0,
                },
            ],
            400,
            0,
            0,
        );
        assert!((stats.imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_worker_list_panics() {
        let _ = stats_with(vec![], 1, 1, 0);
    }
}
