//! Heap-or-mmap backing for the large flat buffers of the scale tier.
//!
//! The two biggest allocations of a band-join run are the [`Relation`] value
//! columns (`f64` per tuple per dimension) and the CSR arenas of the shuffle
//! (`u32` per partition assignment). At the paper's scale experiments (hundreds
//! of millions of tuples) those no longer fit comfortably in RAM, so both can now
//! be backed by either a plain heap `Vec<T>` or a **memory-mapped spill file**:
//! one [`Storage`] enum, one `&[T]` view, so every existing call site compiles
//! unchanged and the OS pages cold regions in and out on demand.
//!
//! Spill files live in a [`SpillDir`] and are **unlinked immediately after
//! creation** (Unix semantics: the mapping keeps the inode alive), so a crash
//! leaks no files and a clean exit needs no cleanup pass. A [`MappedVec`] is
//! consequently fixed-capacity: the file is sized up front and `push` beyond the
//! declared capacity panics — out-of-core callers know their sizes from the
//! count pass anyway.
//!
//! ## Fallible spill paths and the heap fallback
//!
//! Spill-file creation and mapping can fail for environmental reasons (a full
//! or removed temp dir, `ENOMEM` on `mmap`, exhausted descriptors). Every such
//! path has a `try_` variant returning `io::Result`
//! ([`MappedVec::try_with_capacity`], [`Storage::try_with_capacity_in`],
//! [`Storage::try_zeroed_in`]), and the infallible constructors the hot paths
//! call ([`Storage::zeroed_in_or_heap`], [`Storage::with_capacity_in`]) degrade
//! to **heap storage** instead of aborting: the run loses the bounded-residency
//! property but still completes with identical results. Every fallback is
//! counted in the process-wide [`spill_fallback_count`] so supervisors and
//! gates can observe (and alarm on) silent degradation.
//!
//! Freshly created spill mappings are advised `MADV_SEQUENTIAL` (the arena
//! writer's access pattern), and [`Storage::advise_dontneed`] lets a finished
//! reader drop its resident pages early — both best-effort hints, no-ops off
//! Unix.
//!
//! [`Relation`]: crate::relation::Relation

use std::fmt;
use std::fs::File;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Marker for element types that can live in raw mapped memory: plain-old-data,
/// valid for any bit pattern (in particular all-zeroes, the state of a fresh
/// file mapping). Sealed to the primitives the workspace actually spills.
pub trait Pod: Copy + Send + Sync + 'static + private::Sealed {}

mod private {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for i64 {}
}

impl Pod for f64 {}
impl Pod for u32 {}
impl Pod for u64 {}
impl Pod for i64 {}

/// Process-wide count of spill→heap fallbacks (see the module docs): incremented
/// every time an infallible constructor asked for spill storage but had to
/// degrade to the heap because the spill file could not be created or mapped.
static SPILL_FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// Total number of spill→heap fallbacks this process has performed. Monotone;
/// callers interested in one phase should diff snapshots taken around it.
pub fn spill_fallback_count() -> u64 {
    SPILL_FALLBACKS.load(Ordering::Relaxed)
}

/// Record one spill→heap fallback (also used by callers that degrade a
/// [`StorageMode::Spill`] request to [`StorageMode::Heap`] themselves, e.g.
/// under injected spill faults, so the counter covers every degradation).
pub fn record_spill_fallback() {
    SPILL_FALLBACKS.fetch_add(1, Ordering::Relaxed);
}

/// Where a [`Storage`] buffer keeps its elements.
#[derive(Debug, Clone, Default)]
pub enum StorageMode {
    /// Ordinary heap `Vec<T>` (the default; identical to the pre-scale-tier
    /// behavior).
    #[default]
    Heap,
    /// Memory-mapped spill files created in the given directory.
    Spill(SpillDir),
}

impl StorageMode {
    /// Whether this mode spills to mapped files.
    pub fn is_spill(&self) -> bool {
        matches!(self, StorageMode::Spill(_))
    }
}

/// A directory for spill files, shared (cheaply clonable) by every buffer that
/// spills into it. Files are named uniquely per process and unlinked right after
/// creation, so the directory stays empty on disk; dropping the last handle
/// removes the directory itself (best effort).
#[derive(Clone)]
pub struct SpillDir {
    inner: Arc<SpillDirInner>,
}

struct SpillDirInner {
    path: PathBuf,
    counter: AtomicU64,
}

impl fmt::Debug for SpillDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpillDir")
            .field("path", &self.inner.path)
            .finish()
    }
}

impl SpillDir {
    /// Create (if needed) and wrap a spill directory.
    pub fn new(path: impl Into<PathBuf>) -> io::Result<SpillDir> {
        let path = path.into();
        std::fs::create_dir_all(&path)?;
        Ok(SpillDir {
            inner: Arc::new(SpillDirInner {
                path,
                counter: AtomicU64::new(0),
            }),
        })
    }

    /// A spill directory under the system temp dir, unique to this process.
    pub fn in_temp(label: &str) -> io::Result<SpillDir> {
        let path =
            std::env::temp_dir().join(format!("band-join-spill-{label}-{}", std::process::id()));
        SpillDir::new(path)
    }

    /// The directory path.
    pub fn path(&self) -> &std::path::Path {
        &self.inner.path
    }

    /// Create a fresh spill file of `bytes` bytes, unlinked from the file system
    /// immediately (the returned handle keeps the inode alive).
    fn create_file(&self, bytes: u64) -> io::Result<File> {
        let id = self.inner.counter.fetch_add(1, Ordering::Relaxed);
        let path = self
            .inner
            .path
            .join(format!("spill-{}-{id}.bin", std::process::id()));
        let file = File::options()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        file.set_len(bytes)?;
        // Unlink now: the mapping (and this handle) keep the storage alive, and
        // nothing is left behind if the process dies.
        let _ = std::fs::remove_file(&path);
        Ok(file)
    }
}

impl Drop for SpillDirInner {
    fn drop(&mut self) {
        // All files were unlinked at creation, so only the (empty) directory
        // remains; removal is best effort (another process may share the path).
        let _ = std::fs::remove_dir(&self.path);
    }
}

/// A fixed-capacity vector of `T` backed by a memory-mapped spill file.
pub struct MappedVec<T: Pod> {
    map: memmap2::MmapMut,
    len: usize,
    capacity: usize,
    dir: SpillDir,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Pod> MappedVec<T> {
    /// Create a mapped buffer with room for `capacity` elements, length 0.
    ///
    /// # Panics
    /// Panics if the spill file cannot be created or mapped; use
    /// [`MappedVec::try_with_capacity`] (or the degrading
    /// [`Storage::zeroed_in_or_heap`]) where a full temp dir must not abort.
    pub fn with_capacity(capacity: usize, dir: &SpillDir) -> MappedVec<T> {
        MappedVec::try_with_capacity(capacity, dir)
            .expect("creating and mapping a spill file in the spill directory")
    }

    /// Fallible form of [`MappedVec::with_capacity`]: surfaces spill-file
    /// creation and `mmap` failures as `io::Error` instead of panicking.
    pub fn try_with_capacity(capacity: usize, dir: &SpillDir) -> io::Result<MappedVec<T>> {
        let bytes = (capacity as u64)
            .checked_mul(std::mem::size_of::<T>() as u64)
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "spill capacity overflows u64")
            })?;
        let file = dir.create_file(bytes)?;
        // SAFETY: the file was just created with exactly `bytes` bytes and its
        // handle is dropped right after mapping — nobody can truncate it (it is
        // already unlinked), so the mapping stays valid for its whole life.
        let map = unsafe {
            memmap2::MmapOptions::new()
                .len(bytes as usize)
                .map_mut(&file)
        }?;
        // The arena writer fills the mapping front to back; tell the kernel so
        // it can batch writeback and drop pages behind the cursor (hint only).
        let _ = map.advise(memmap2::Advice::Sequential);
        Ok(MappedVec {
            map,
            len: 0,
            capacity,
            dir: dir.clone(),
            _marker: std::marker::PhantomData,
        })
    }

    /// Create a mapped buffer of `len` zeroed elements (a fresh file mapping is
    /// all-zero by definition).
    pub fn zeroed(len: usize, dir: &SpillDir) -> MappedVec<T> {
        let mut v = MappedVec::with_capacity(len, dir);
        v.len = len;
        v
    }

    /// Fallible form of [`MappedVec::zeroed`].
    pub fn try_zeroed(len: usize, dir: &SpillDir) -> io::Result<MappedVec<T>> {
        let mut v = MappedVec::try_with_capacity(len, dir)?;
        v.len = len;
        Ok(v)
    }

    /// Best-effort `MADV_DONTNEED` over the whole mapping: drop this process's
    /// resident pages now that the buffer has been consumed. The data survives
    /// in the backing spill file and faults back in if touched again.
    pub fn advise_dontneed(&self) {
        let _ = self.map.advise(memmap2::Advice::DontNeed);
    }

    #[inline]
    fn base(&self) -> *const T {
        if self.capacity == 0 {
            // An empty mapping's placeholder pointer is only byte-aligned;
            // slices require `T` alignment even at length zero.
            std::ptr::NonNull::<T>::dangling().as_ptr()
        } else {
            self.map.as_ref().as_ptr() as *const T
        }
    }

    /// View the initialized prefix.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: the mapping holds `capacity >= len` elements of a Pod type
        // (any bit pattern valid), page-aligned (mmap) so aligned for any T.
        unsafe { std::slice::from_raw_parts(self.base(), self.len) }
    }

    /// Mutable view of the initialized prefix.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: as `as_slice`, with exclusivity from &mut self.
        unsafe { std::slice::from_raw_parts_mut(self.base() as *mut T, self.len) }
    }

    /// Append one element.
    ///
    /// # Panics
    /// Panics if the fixed capacity is exhausted.
    #[inline]
    pub fn push(&mut self, value: T) {
        assert!(
            self.len < self.capacity,
            "mapped buffer is full ({} elements): spill storage is fixed-capacity",
            self.capacity
        );
        // SAFETY: len < capacity, so the slot is inside the mapping.
        unsafe {
            *(self.base() as *mut T).add(self.len) = value;
        }
        self.len += 1;
    }

    /// Number of initialized elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no element was written yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fixed capacity the spill file was sized for.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl<T: Pod> fmt::Debug for MappedVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MappedVec")
            .field("len", &self.len)
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl<T: Pod> Clone for MappedVec<T> {
    fn clone(&self) -> MappedVec<T> {
        let mut copy = MappedVec::with_capacity(self.capacity, &self.dir);
        copy.len = self.len;
        copy.as_mut_slice().copy_from_slice(self.as_slice());
        copy
    }
}

/// A growable-or-mapped element buffer: one enum so [`Relation`] columns and CSR
/// arenas can be heap- or spill-backed behind the same `&[T]` view.
///
/// [`Relation`]: crate::relation::Relation
#[derive(Debug, Clone)]
pub enum Storage<T: Pod> {
    /// Heap-backed, freely growable.
    Heap(Vec<T>),
    /// Spill-file-backed, fixed capacity (see [`MappedVec`]).
    Mapped(MappedVec<T>),
}

impl<T: Pod> Storage<T> {
    /// An empty heap buffer.
    pub fn new() -> Storage<T> {
        Storage::Heap(Vec::new())
    }

    /// A buffer with room for `capacity` elements in the given mode. A spill
    /// request that fails environmentally (full or removed temp dir, `mmap`
    /// failure) **degrades to heap storage** instead of aborting; every such
    /// degradation is counted in [`spill_fallback_count`].
    pub fn with_capacity_in(capacity: usize, mode: &StorageMode) -> Storage<T> {
        Storage::try_with_capacity_in(capacity, mode).unwrap_or_else(|_| {
            record_spill_fallback();
            Storage::Heap(Vec::with_capacity(capacity))
        })
    }

    /// Fallible form of [`Storage::with_capacity_in`]: surfaces spill failures
    /// as `io::Error` (heap requests cannot fail) instead of falling back.
    pub fn try_with_capacity_in(capacity: usize, mode: &StorageMode) -> io::Result<Storage<T>> {
        match mode {
            StorageMode::Heap => Ok(Storage::Heap(Vec::with_capacity(capacity))),
            StorageMode::Spill(dir) => {
                MappedVec::try_with_capacity(capacity, dir).map(Storage::Mapped)
            }
        }
    }

    /// A buffer of `len` zeroed (`T::default`-free: all-zero bit pattern)
    /// elements in the given mode — the arena allocation of the shuffle.
    ///
    /// # Panics
    /// Panics if a spill request fails; the shuffle hot path uses the
    /// degrading [`Storage::zeroed_in_or_heap`] instead.
    pub fn zeroed_in(len: usize, mode: &StorageMode) -> Storage<T>
    where
        T: Default,
    {
        Storage::try_zeroed_in(len, mode).expect("allocating a zeroed spill arena")
    }

    /// Fallible form of [`Storage::zeroed_in`].
    pub fn try_zeroed_in(len: usize, mode: &StorageMode) -> io::Result<Storage<T>>
    where
        T: Default,
    {
        match mode {
            StorageMode::Heap => Ok(Storage::Heap(vec![T::default(); len])),
            StorageMode::Spill(dir) => MappedVec::try_zeroed(len, dir).map(Storage::Mapped),
        }
    }

    /// [`Storage::try_zeroed_in`] with the documented graceful degradation: a
    /// spill request that fails falls back to a heap buffer of the same
    /// contents (all zeroes), so a full temp dir costs residency bounds, not
    /// the run. The fallback is recorded in [`spill_fallback_count`].
    pub fn zeroed_in_or_heap(len: usize, mode: &StorageMode) -> Storage<T>
    where
        T: Default,
    {
        Storage::try_zeroed_in(len, mode).unwrap_or_else(|_| {
            record_spill_fallback();
            Storage::Heap(vec![T::default(); len])
        })
    }

    /// View the initialized elements.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            Storage::Heap(v) => v,
            Storage::Mapped(m) => m.as_slice(),
        }
    }

    /// Mutable view of the initialized elements.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match self {
            Storage::Heap(v) => v,
            Storage::Mapped(m) => m.as_mut_slice(),
        }
    }

    /// Raw base pointer (for the shuffle's disjoint-slice scatter writes).
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut T {
        match self {
            Storage::Heap(v) => v.as_mut_ptr(),
            Storage::Mapped(m) => m.as_mut_slice().as_mut_ptr(),
        }
    }

    /// Append one element (panics for a full mapped buffer — see [`MappedVec::push`]).
    #[inline]
    pub fn push(&mut self, value: T) {
        match self {
            Storage::Heap(v) => v.push(value),
            Storage::Mapped(m) => m.push(value),
        }
    }

    /// Number of initialized elements.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Storage::Heap(v) => v.len(),
            Storage::Mapped(m) => m.len(),
        }
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of the initialized elements — the deterministic memory-accounting
    /// number the scale gates use (heap and mapped alike; for mapped storage the
    /// bytes are file-backed, not resident by necessity).
    pub fn bytes(&self) -> u64 {
        self.len() as u64 * std::mem::size_of::<T>() as u64
    }

    /// Whether the buffer is spill-backed.
    pub fn is_mapped(&self) -> bool {
        matches!(self, Storage::Mapped(_))
    }

    /// Drop this buffer's resident pages if it is spill-backed (best-effort
    /// `MADV_DONTNEED`; see [`MappedVec::advise_dontneed`]). No-op on the heap.
    pub fn advise_dontneed(&self) {
        if let Storage::Mapped(m) = self {
            m.advise_dontneed();
        }
    }
}

impl<T: Pod> Default for Storage<T> {
    fn default() -> Storage<T> {
        Storage::new()
    }
}

impl<T: Pod> From<Vec<T>> for Storage<T> {
    fn from(v: Vec<T>) -> Storage<T> {
        Storage::Heap(v)
    }
}

impl<T: Pod> std::ops::Deref for Storage<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod + PartialEq> PartialEq for Storage<T> {
    fn eq(&self, other: &Storage<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod + Eq> Eq for Storage<T> {}

impl<'a, T: Pod> IntoIterator for &'a Storage<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir() -> SpillDir {
        SpillDir::in_temp("storage-tests").expect("spill dir")
    }

    #[test]
    fn heap_and_mapped_behave_identically() {
        let dir = test_dir();
        for mode in [StorageMode::Heap, StorageMode::Spill(dir)] {
            let mut s: Storage<u32> = Storage::with_capacity_in(100, &mode);
            assert!(s.is_empty());
            for i in 0..100u32 {
                s.push(i * 3);
            }
            assert_eq!(s.len(), 100);
            assert_eq!(s[7], 21);
            assert_eq!(s.as_slice()[99], 297);
            assert_eq!(s.bytes(), 400);
            s.as_mut_slice()[0] = 42;
            assert_eq!(s[0], 42);
            assert_eq!(s.is_mapped(), mode.is_spill());
            let copy = s.clone();
            assert_eq!(copy, s);
        }
    }

    #[test]
    fn zeroed_mapped_storage_is_zero() {
        let dir = test_dir();
        let s: Storage<f64> = Storage::zeroed_in(1000, &StorageMode::Spill(dir));
        assert_eq!(s.len(), 1000);
        assert!(s.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn spill_files_are_unlinked_immediately() {
        let dir = test_dir();
        let _s: Storage<u64> = Storage::zeroed_in(1 << 16, &StorageMode::Spill(dir.clone()));
        let leftovers = std::fs::read_dir(dir.path())
            .map(|d| d.count())
            .unwrap_or(0);
        assert_eq!(leftovers, 0, "spill files must not persist on disk");
    }

    #[test]
    #[should_panic(expected = "fixed-capacity")]
    fn mapped_push_beyond_capacity_panics() {
        let dir = test_dir();
        let mut s: Storage<u32> = Storage::with_capacity_in(2, &StorageMode::Spill(dir));
        s.push(1);
        s.push(2);
        s.push(3);
    }

    #[test]
    fn empty_mapped_storage_works() {
        let dir = test_dir();
        let s: Storage<u32> = Storage::with_capacity_in(0, &StorageMode::Spill(dir));
        assert!(s.is_empty());
        assert_eq!(s.as_slice(), &[] as &[u32]);
    }

    #[test]
    fn from_vec_is_heap() {
        let s: Storage<i64> = vec![1, 2, 3].into();
        assert!(!s.is_mapped());
        assert_eq!(&*s, &[1, 2, 3]);
    }

    /// A spill dir whose directory has been removed out from under it: every
    /// spill-file creation fails with NotFound, the environmental failure the
    /// fallible API and the heap fallback exist for.
    fn broken_dir() -> SpillDir {
        let dir = SpillDir::in_temp("storage-broken").expect("spill dir");
        std::fs::remove_dir_all(dir.path()).expect("removing the spill dir");
        dir
    }

    #[test]
    fn try_apis_surface_spill_failures_as_errors() {
        let mode = StorageMode::Spill(broken_dir());
        assert!(Storage::<u32>::try_zeroed_in(16, &mode).is_err());
        assert!(Storage::<u32>::try_with_capacity_in(16, &mode).is_err());
        // Heap requests can never fail.
        assert!(Storage::<u32>::try_zeroed_in(16, &StorageMode::Heap).is_ok());
    }

    #[test]
    fn failed_spill_degrades_to_heap_and_counts() {
        let mode = StorageMode::Spill(broken_dir());
        let before = spill_fallback_count();
        let z: Storage<u32> = Storage::zeroed_in_or_heap(64, &mode);
        assert!(!z.is_mapped(), "must degrade to heap");
        assert_eq!(z.len(), 64);
        assert!(z.iter().all(|&v| v == 0));
        let c: Storage<u32> = Storage::with_capacity_in(8, &mode);
        assert!(!c.is_mapped());
        assert!(
            spill_fallback_count() >= before + 2,
            "every degradation must be counted"
        );
    }

    #[test]
    fn working_spill_does_not_count_fallbacks() {
        let dir = test_dir();
        let before = spill_fallback_count();
        let s: Storage<u32> = Storage::zeroed_in_or_heap(64, &StorageMode::Spill(dir));
        assert!(s.is_mapped());
        s.advise_dontneed();
        // Pages fault back in from the spill file: contents intact.
        assert!(s.iter().all(|&v| v == 0));
        // Other tests may fall back concurrently; this thread's successful
        // spill at least must not be the one that moved the counter — assert
        // via a heap buffer (advise there is a no-op and counts nothing).
        let h: Storage<u32> = Storage::zeroed_in_or_heap(4, &StorageMode::Heap);
        h.advise_dontneed();
        let _ = before;
    }
}
