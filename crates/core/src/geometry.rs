//! Axis-aligned hyper-rectangles of the join-attribute space.
//!
//! RecPart partitions the `d`-dimensional attribute space `A_1 × … × A_d` into
//! rectangular regions. Regions are *half-open*: a point belongs to a region iff
//! `lo[i] <= x[i] < hi[i]` in every dimension. Half-openness guarantees that the
//! children of a split form a disjoint cover of their parent, so every point of
//! the space belongs to exactly one leaf of the split tree.

use crate::band::BandCondition;
use serde::{Deserialize, Serialize};

/// A half-open axis-aligned box `[lo_1, hi_1) × … × [lo_d, hi_d)`.
///
/// Unbounded sides are represented by `-∞` / `+∞`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Rect {
    /// The whole `d`-dimensional space.
    pub fn unbounded(dims: usize) -> Self {
        assert!(dims > 0);
        Rect {
            lo: vec![f64::NEG_INFINITY; dims],
            hi: vec![f64::INFINITY; dims],
        }
    }

    /// A box with explicit bounds.
    ///
    /// # Panics
    /// Panics if the bounds have different lengths or any `lo[i] > hi[i]`.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "bound vectors must have equal length");
        assert!(!lo.is_empty(), "rectangles need at least one dimension");
        for (l, h) in lo.iter().zip(&hi) {
            assert!(l <= h, "lower bound {l} exceeds upper bound {h}");
        }
        Rect { lo, hi }
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Lower bound in dimension `dim` (inclusive).
    #[inline]
    pub fn lo(&self, dim: usize) -> f64 {
        self.lo[dim]
    }

    /// Upper bound in dimension `dim` (exclusive).
    #[inline]
    pub fn hi(&self, dim: usize) -> f64 {
        self.hi[dim]
    }

    /// Extent (side length) in dimension `dim`; may be infinite.
    #[inline]
    pub fn extent(&self, dim: usize) -> f64 {
        self.hi[dim] - self.lo[dim]
    }

    /// Extent in dimension `dim` after clipping this rectangle to `domain`.
    ///
    /// Used to decide whether a partition is "small" even when the partition itself is
    /// unbounded (the root starts at ±∞): only the part that overlaps the observed data
    /// domain matters.
    pub fn clipped_extent(&self, dim: usize, domain: &Rect) -> f64 {
        let lo = self.lo[dim].max(domain.lo[dim]);
        let hi = self.hi[dim].min(domain.hi[dim]);
        (hi - lo).max(0.0)
    }

    /// Does the point belong to this (half-open) rectangle?
    #[inline]
    pub fn contains(&self, point: &[f64]) -> bool {
        debug_assert_eq!(point.len(), self.dims());
        // Half-open: [lo, hi). The unbounded upper side (+∞) accepts everything finite.
        point
            .iter()
            .zip(self.lo.iter().zip(&self.hi))
            .all(|(&p, (&lo, &hi))| p >= lo && p < hi)
    }

    /// Does the ε-range around a **T**-tuple `t` intersect this rectangle?
    ///
    /// The ε-range around `t` is the closed box of S-values that can join with `t`
    /// (see [`BandCondition::range_around_t`]). A T-tuple must be copied to every
    /// partition whose region intersects its ε-range (Algorithm 3 of the paper).
    #[inline]
    pub fn intersects_t_range(&self, t: &[f64], band: &BandCondition) -> bool {
        debug_assert_eq!(t.len(), self.dims());
        for (i, &tv) in t.iter().enumerate() {
            let (lo, hi) = band.range_around_t(i, tv);
            // Closed range [lo, hi] vs half-open [self.lo, self.hi):
            // empty intersection iff hi < self.lo or lo >= self.hi.
            if hi < self.lo[i] || lo >= self.hi[i] {
                return false;
            }
        }
        true
    }

    /// Does the ε-range around an **S**-tuple `s` intersect this rectangle?
    ///
    /// Used when the roles of the inputs are reversed (an *S-split*, Section 4.2
    /// "Extension: symmetric partitioning").
    #[inline]
    pub fn intersects_s_range(&self, s: &[f64], band: &BandCondition) -> bool {
        debug_assert_eq!(s.len(), self.dims());
        for (i, &sv) in s.iter().enumerate() {
            let (lo, hi) = band.range_around_s(i, sv);
            if hi < self.lo[i] || lo >= self.hi[i] {
                return false;
            }
        }
        true
    }

    /// Split this rectangle at `value` in dimension `dim`.
    ///
    /// Returns `(left, right)` where `left` keeps points with `x[dim] < value` and
    /// `right` keeps points with `x[dim] >= value`.
    ///
    /// # Panics
    /// Panics if `value` lies outside `[lo(dim), hi(dim)]`.
    pub fn split(&self, dim: usize, value: f64) -> (Rect, Rect) {
        assert!(
            value >= self.lo[dim] && value <= self.hi[dim],
            "split value {value} outside rectangle bounds [{}, {}] in dim {dim}",
            self.lo[dim],
            self.hi[dim]
        );
        let mut left = self.clone();
        let mut right = self.clone();
        left.hi[dim] = value;
        right.lo[dim] = value;
        (left, right)
    }

    /// The smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        assert_eq!(self.dims(), other.dims());
        let lo = self
            .lo
            .iter()
            .zip(&other.lo)
            .map(|(a, b)| a.min(*b))
            .collect();
        let hi = self
            .hi
            .iter()
            .zip(&other.hi)
            .map(|(a, b)| a.max(*b))
            .collect();
        Rect { lo, hi }
    }

    /// The intersection of two rectangles, or `None` if they do not overlap.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        assert_eq!(self.dims(), other.dims());
        let mut lo = Vec::with_capacity(self.dims());
        let mut hi = Vec::with_capacity(self.dims());
        for i in 0..self.dims() {
            let l = self.lo[i].max(other.lo[i]);
            let h = self.hi[i].min(other.hi[i]);
            if l >= h {
                return None;
            }
            lo.push(l);
            hi.push(h);
        }
        Some(Rect { lo, hi })
    }

    /// The bounding box of a set of points (each of dimension `dims`), or `None` if
    /// the iterator is empty. The upper bounds are widened by the smallest positive
    /// amount that keeps every point strictly inside the half-open box.
    pub fn bounding_box<'a>(dims: usize, points: impl Iterator<Item = &'a [f64]>) -> Option<Rect> {
        let mut lo = vec![f64::INFINITY; dims];
        let mut hi = vec![f64::NEG_INFINITY; dims];
        let mut any = false;
        for p in points {
            any = true;
            for i in 0..dims {
                lo[i] = lo[i].min(p[i]);
                hi[i] = hi[i].max(p[i]);
            }
        }
        if !any {
            return None;
        }
        // Widen upper bounds so every observed point is strictly inside [lo, hi).
        for h in hi.iter_mut() {
            let bumped = if *h == 0.0 {
                f64::MIN_POSITIVE
            } else {
                *h + h.abs() * f64::EPSILON * 4.0
            };
            *h = bumped.max(*h + f64::MIN_POSITIVE);
        }
        Some(Rect { lo, hi })
    }

    /// Volume of the rectangle; infinite if any side is unbounded.
    pub fn volume(&self) -> f64 {
        (0..self.dims()).map(|d| self.extent(d)).product()
    }

    /// The center point, with unbounded sides clamped to the finite bound (or 0 if both
    /// sides are unbounded). Mostly useful for diagnostics and tests.
    pub fn center(&self) -> Vec<f64> {
        (0..self.dims())
            .map(|d| {
                let (lo, hi) = (self.lo[d], self.hi[d]);
                match (lo.is_finite(), hi.is_finite()) {
                    (true, true) => 0.5 * (lo + hi),
                    (true, false) => lo,
                    (false, true) => hi,
                    (false, false) => 0.0,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_contains_everything() {
        let r = Rect::unbounded(3);
        assert!(r.contains(&[0.0, -1e300, 1e300]));
        assert_eq!(r.extent(0), f64::INFINITY);
    }

    #[test]
    fn contains_is_half_open() {
        let r = Rect::new(vec![0.0, 0.0], vec![1.0, 2.0]);
        assert!(r.contains(&[0.0, 0.0]));
        assert!(r.contains(&[0.999, 1.999]));
        assert!(!r.contains(&[1.0, 0.5]));
        assert!(!r.contains(&[0.5, 2.0]));
        assert!(!r.contains(&[-0.001, 0.5]));
    }

    #[test]
    fn split_partitions_points() {
        let r = Rect::new(vec![0.0], vec![10.0]);
        let (left, right) = r.split(0, 4.0);
        assert!(left.contains(&[3.999]));
        assert!(!left.contains(&[4.0]));
        assert!(right.contains(&[4.0]));
        assert!(!right.contains(&[3.999]));
        // Every point in the parent is in exactly one child.
        for x in [0.0, 1.0, 3.9999, 4.0, 7.5, 9.999] {
            let p = [x];
            assert!(r.contains(&p));
            assert_ne!(left.contains(&p), right.contains(&p));
        }
    }

    #[test]
    fn split_of_unbounded_rect() {
        let r = Rect::unbounded(2);
        let (left, right) = r.split(1, 0.0);
        assert!(left.contains(&[100.0, -0.0001]));
        assert!(right.contains(&[100.0, 0.0]));
        assert!(!left.contains(&[100.0, 0.0]));
    }

    #[test]
    fn t_range_intersection_symmetric() {
        let band = BandCondition::symmetric(&[1.0]);
        let r = Rect::new(vec![5.0], vec![10.0]);
        // t = 4.5 → ε-range [3.5, 5.5] overlaps [5, 10)
        assert!(r.intersects_t_range(&[4.5], &band));
        // t = 3.9 → ε-range [2.9, 4.9] does not reach 5.0
        assert!(!r.intersects_t_range(&[3.9], &band));
        // t = 10.9 → ε-range [9.9, 11.9] overlaps
        assert!(r.intersects_t_range(&[10.9], &band));
        // t = 11.1 → ε-range [10.1, 12.1] does not overlap half-open [5, 10)
        assert!(!r.intersects_t_range(&[11.1], &band));
        // Boundary: t = 11.0 → ε-range starts exactly at 10.0, which is excluded.
        assert!(!r.intersects_t_range(&[11.0], &band));
    }

    #[test]
    fn s_range_intersection_asymmetric() {
        // s within [t-1, t+3]  ⇔  t within [s-3, s+1]
        let band = BandCondition::try_asymmetric(&[1.0], &[3.0]).unwrap();
        let r = Rect::new(vec![0.0], vec![10.0]); // region of T-values
        assert!(r.intersects_s_range(&[9.5], &band)); // t-range [6.5, 10.5]
        assert!(r.intersects_s_range(&[12.9], &band)); // t-range [9.9, 13.9]
        assert!(!r.intersects_s_range(&[13.1], &band)); // t-range [10.1, 14.1]
        assert!(r.intersects_s_range(&[-0.9], &band)); // t-range [-3.9, 0.1]
        assert!(!r.intersects_s_range(&[-1.1], &band)); // t-range [-4.1, -0.1]
    }

    #[test]
    fn epsilon_range_consistency_with_matches() {
        // If (s, t) matches then the region containing s must intersect the ε-range of t.
        let band = BandCondition::symmetric(&[0.5, 2.0]);
        let region = Rect::new(vec![0.0, 0.0], vec![5.0, 5.0]);
        let s = [4.9, 0.1];
        let t = [5.3, 2.0];
        assert!(band.matches(&s, &t));
        assert!(region.contains(&s));
        assert!(region.intersects_t_range(&t, &band));
    }

    #[test]
    fn union_and_intersection() {
        let a = Rect::new(vec![0.0, 0.0], vec![2.0, 2.0]);
        let b = Rect::new(vec![1.0, 1.0], vec![3.0, 3.0]);
        let u = a.union(&b);
        assert_eq!(u, Rect::new(vec![0.0, 0.0], vec![3.0, 3.0]));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Rect::new(vec![1.0, 1.0], vec![2.0, 2.0]));
        let c = Rect::new(vec![5.0, 5.0], vec![6.0, 6.0]);
        assert!(a.intersection(&c).is_none());
    }

    #[test]
    fn bounding_box_covers_points() {
        let pts: Vec<Vec<f64>> = vec![vec![1.0, 5.0], vec![-2.0, 3.0], vec![0.5, 7.0]];
        let bb = Rect::bounding_box(2, pts.iter().map(|p| p.as_slice())).unwrap();
        for p in &pts {
            assert!(bb.contains(p), "bounding box must contain {p:?}");
        }
        assert!(Rect::bounding_box(2, std::iter::empty()).is_none());
    }

    #[test]
    fn clipped_extent_uses_domain() {
        let domain = Rect::new(vec![0.0], vec![100.0]);
        let r = Rect::unbounded(1);
        assert_eq!(r.clipped_extent(0, &domain), 100.0);
        let (left, _) = r.split(0, 30.0);
        assert_eq!(left.clipped_extent(0, &domain), 30.0);
        let outside = Rect::new(vec![200.0], vec![300.0]);
        assert_eq!(outside.clipped_extent(0, &domain), 0.0);
    }

    #[test]
    fn volume_and_center() {
        let r = Rect::new(vec![0.0, 0.0], vec![2.0, 3.0]);
        assert_eq!(r.volume(), 6.0);
        assert_eq!(r.center(), vec![1.0, 1.5]);
        assert_eq!(Rect::unbounded(2).volume(), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn split_outside_bounds_panics() {
        let r = Rect::new(vec![0.0], vec![1.0]);
        let _ = r.split(0, 2.0);
    }
}
