//! Grid-ε: attribute-space grid partitioning (Soloviev's truncating-hash band-join
//! algorithm, generalized to `d` dimensions).
//!
//! The attribute space is divided into axis-aligned cells whose side length in dimension
//! `i` is `scale · ε_i` (the paper's default Grid-ε uses `scale = 1`). Every S-tuple is
//! sent to the single cell containing it; every T-tuple is copied to each cell its
//! ε-range intersects — with cell side `ε_i` that is up to 3 cells per dimension, i.e.
//! `O(3^d)` duplication. Cells are materialized lazily from the actual data (only cells
//! that receive at least one tuple become partitions), which is what a truncating-hash
//! implementation on MapReduce effectively does.
//!
//! Grid-ε is not defined for band width zero (the paper notes the same); construction
//! fails if any `ε_i` is zero.

use recpart::simd::cell_indices;
use recpart::{
    AssignmentSink, BandCondition, PartitionId, Partitioner, Relation, RouteKernel, ScatterPolicy,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::ops::Range;

/// The Grid-ε / Grid-(j·ε) partitioner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridPartitioner {
    band: BandCondition,
    /// Cell side length per dimension.
    cell: Vec<f64>,
    /// Origin of the grid (minimum corner of the data's bounding box).
    origin: Vec<f64>,
    /// Map from cell coordinates to partition id.
    cells: HashMap<Vec<i64>, PartitionId>,
    /// Input-tuple count per partition (used as the load estimate).
    cell_input: Vec<f64>,
    name: String,
}

impl GridPartitioner {
    /// Build a grid with cell side `scale · ε_i` from the actual inputs.
    ///
    /// # Panics
    /// Panics if any band width is zero (Grid-ε is undefined for equi-dimensions) or if
    /// `scale <= 0`.
    pub fn build(s: &Relation, t: &Relation, band: &BandCondition, scale: f64) -> GridPartitioner {
        assert!(scale > 0.0, "grid scale must be positive");
        let dims = band.dims();
        for d in 0..dims {
            assert!(
                band.eps(d) > 0.0,
                "Grid-eps is not defined for band width 0 (dimension {d})"
            );
        }
        let cell: Vec<f64> = (0..dims).map(|d| band.eps(d) * scale).collect();

        // Grid origin: minimum corner over both inputs (any fixed origin works; using the
        // data minimum keeps cell coordinates small).
        let mut origin = vec![f64::INFINITY; dims];
        for r in [s, t] {
            if let Some(mins) = r.min_per_dim() {
                for (o, m) in origin.iter_mut().zip(mins) {
                    *o = o.min(m);
                }
            }
        }
        for o in origin.iter_mut() {
            if !o.is_finite() {
                *o = 0.0;
            }
        }

        let mut builder = GridPartitioner {
            band: band.clone(),
            cell,
            origin,
            cells: HashMap::new(),
            cell_input: Vec::new(),
            name: if (scale - 1.0).abs() < 1e-12 {
                "Grid-eps".to_string()
            } else {
                format!("Grid-{scale}eps")
            },
        };

        // Materialize every cell that receives at least one S-tuple (those are the only
        // cells that can produce output) and every cell containing a T-tuple (so that no
        // tuple ends up unassigned, as Definition 1 requires h(x) ≠ ∅).
        let mut coords = vec![0i64; dims];
        for key in s.iter() {
            builder.cell_coords(&key, &mut coords);
            builder.intern(&coords, 1.0);
        }
        for key in t.iter() {
            builder.cell_coords(&key, &mut coords);
            builder.intern(&coords, 1.0);
        }
        builder
    }

    /// The grid cell side lengths.
    pub fn cell_sizes(&self) -> &[f64] {
        &self.cell
    }

    /// Number of materialized (non-empty) cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    fn intern(&mut self, coords: &[i64], weight: f64) -> PartitionId {
        if let Some(&id) = self.cells.get(coords) {
            self.cell_input[id as usize] += weight;
            return id;
        }
        let id = self.cells.len() as PartitionId;
        self.cells.insert(coords.to_vec(), id);
        self.cell_input.push(weight);
        id
    }

    #[inline]
    fn cell_coords(&self, key: &[f64], out: &mut [i64]) {
        for (d, c) in out.iter_mut().enumerate() {
            *c = ((key[d] - self.origin[d]) / self.cell[d]).floor() as i64;
        }
    }

    /// Enumerate the (existing) cells intersecting the ε-range around a T-tuple into
    /// `emit`, using caller-provided scratch buffers (`lo`/`hi`/`cursor`, each of
    /// `dims` length) so block routing re-touches no allocator per tuple.
    fn for_each_t_range_cell(
        &self,
        key: &[f64],
        scratch: &mut TScratch,
        emit: impl FnMut(PartitionId),
    ) -> bool {
        for (d, &k) in key.iter().enumerate() {
            let (range_lo, range_hi) = self.band.range_around_t(d, k);
            scratch.lo[d] = ((range_lo - self.origin[d]) / self.cell[d]).floor() as i64;
            scratch.hi[d] = ((range_hi - self.origin[d]) / self.cell[d]).floor() as i64;
        }
        self.for_each_cell_in_box(scratch, emit)
    }

    /// Odometer over the cartesian product of the per-dimension index ranges
    /// already loaded into `scratch.lo`/`scratch.hi`, emitting every
    /// materialized cell. Shared by the per-tuple path (ranges from
    /// [`Self::for_each_t_range_cell`]) and the block path (ranges from the
    /// vectorized [`cell_indices`] sweeps).
    fn for_each_cell_in_box(
        &self,
        scratch: &mut TScratch,
        mut emit: impl FnMut(PartitionId),
    ) -> bool {
        let dims = self.band.dims();
        let TScratch { lo, hi, cursor } = scratch;
        // Iterate the cartesian product of per-dimension index ranges.
        cursor.copy_from_slice(lo);
        let mut any = false;
        loop {
            if let Some(&id) = self.cells.get(cursor.as_slice()) {
                emit(id);
                any = true;
            }
            // Advance the cursor (odometer style). Increment only while
            // strictly below `hi`: extreme keys saturate the cell index to
            // `i64::MAX`, where a blind `+= 1` would overflow.
            let mut d = 0;
            loop {
                if d == dims {
                    return any;
                }
                if cursor[d] < hi[d] {
                    cursor[d] += 1;
                    break;
                }
                cursor[d] = lo[d];
                d += 1;
            }
        }
    }

    /// The tuple's own cell, or partition 0 when it falls outside every
    /// materialized cell. This is both the S-side assignment and the T-side
    /// fallback (a T-tuple whose ε-range hit no cell): either way the tuple must
    /// land somewhere (`h(x) ≠ ∅`, Definition 1) without producing spurious output,
    /// and partition 0 always exists (`num_partitions` is clamped to ≥ 1).
    #[inline]
    fn cell_or_default(&self, key: &[f64], coords: &mut [i64]) -> PartitionId {
        self.cell_coords(key, coords);
        match self.cells.get(coords) {
            Some(&id) => id,
            None => 0,
        }
    }
}

/// Reusable odometer buffers of the T-side range enumeration.
struct TScratch {
    lo: Vec<i64>,
    hi: Vec<i64>,
    cursor: Vec<i64>,
}

impl TScratch {
    fn new(dims: usize) -> Self {
        TScratch {
            lo: vec![0; dims],
            hi: vec![0; dims],
            cursor: vec![0; dims],
        }
    }
}

impl Partitioner for GridPartitioner {
    fn num_partitions(&self) -> usize {
        self.cells.len().max(1)
    }

    fn assign_s(&self, key: &[f64], _tuple_id: u64, out: &mut Vec<PartitionId>) {
        let mut coords = vec![0i64; self.band.dims()];
        out.push(self.cell_or_default(key, &mut coords));
    }

    fn assign_t(&self, key: &[f64], _tuple_id: u64, out: &mut Vec<PartitionId>) {
        let mut scratch = TScratch::new(self.band.dims());
        let any = self.for_each_t_range_cell(key, &mut scratch, |id| out.push(id));
        if !any {
            let mut coords = vec![0i64; self.band.dims()];
            out.push(self.cell_or_default(key, &mut coords));
        }
    }

    // Block routing: same cell arithmetic, restructured column-major over the
    // relation's columnar layout — one vectorized `floor((k − origin) / cell)`
    // sweep per dimension ([`cell_indices`], dispatched on the active
    // [`RouteKernel`]), then per-row hash lookups over the coordinate buffers.
    // `RouteKernel::Scalar` keeps the original row-major per-tuple loop verbatim
    // as the oracle; the kernels reproduce its cell indices bit for bit (the
    // band shifts fold into the kernel's `sub` operand exactly — see
    // [`cell_indices`]), so block == per-tuple assignment is preserved for
    // every kernel.
    fn assign_s_block(&self, rel: &Relation, rows: Range<usize>, sink: &mut AssignmentSink) {
        sink.reserve(rows.len());
        let kernel = RouteKernel::active();
        let dims = self.band.dims();
        let mut coords = vec![0i64; dims];
        if kernel == RouteKernel::Scalar {
            for i in rows {
                let id = self.cell_or_default(&rel.key(i), &mut coords);
                sink.push(id, i as u32);
            }
            return;
        }
        let mut cols: Vec<Vec<i64>> = vec![Vec::new(); dims];
        for (d, col) in cols.iter_mut().enumerate() {
            cell_indices(
                kernel,
                rel.column(d),
                rows.clone(),
                0.0, // k − 0.0 == k bitwise: the unshifted S-side cell
                self.origin[d],
                self.cell[d],
                col,
            );
        }
        for (j, i) in rows.enumerate() {
            for (c, col) in coords.iter_mut().zip(&cols) {
                *c = col[j];
            }
            let id = self.cells.get(coords.as_slice()).copied().unwrap_or(0);
            sink.push(id, i as u32);
        }
    }

    fn assign_t_block(&self, rel: &Relation, rows: Range<usize>, sink: &mut AssignmentSink) {
        sink.reserve(rows.len());
        let kernel = RouteKernel::active();
        let dims = self.band.dims();
        let mut scratch = TScratch::new(dims);
        let mut coords = vec![0i64; dims];
        if kernel == RouteKernel::Scalar {
            for i in rows {
                let key = rel.key(i);
                let any =
                    self.for_each_t_range_cell(&key, &mut scratch, |id| sink.push(id, i as u32));
                if !any {
                    let id = self.cell_or_default(&key, &mut coords);
                    sink.push(id, i as u32);
                }
            }
            return;
        }
        // `range_around_t(d, k) = (k − ε_lo, k + ε_hi)`: pass `sub = ε_lo` for
        // the low endpoint and `sub = −ε_hi` for the high one (`x − (−ε) == x + ε`
        // exactly in IEEE arithmetic), so both sweeps match the scalar endpoints
        // bit for bit.
        let mut lo_cols: Vec<Vec<i64>> = vec![Vec::new(); dims];
        let mut hi_cols: Vec<Vec<i64>> = vec![Vec::new(); dims];
        for d in 0..dims {
            cell_indices(
                kernel,
                rel.column(d),
                rows.clone(),
                self.band.eps_low(d),
                self.origin[d],
                self.cell[d],
                &mut lo_cols[d],
            );
            cell_indices(
                kernel,
                rel.column(d),
                rows.clone(),
                -self.band.eps_high(d),
                self.origin[d],
                self.cell[d],
                &mut hi_cols[d],
            );
        }
        for (j, i) in rows.enumerate() {
            for d in 0..dims {
                scratch.lo[d] = lo_cols[d][j];
                scratch.hi[d] = hi_cols[d][j];
            }
            let any = self.for_each_cell_in_box(&mut scratch, |id| sink.push(id, i as u32));
            if !any {
                let id = self.cell_or_default(&rel.key(i), &mut coords);
                sink.push(id, i as u32);
            }
        }
    }

    fn scatter_policy(&self) -> ScatterPolicy {
        // Closed-form cell arithmetic: re-deriving an assignment is cheaper than
        // buffering it.
        ScatterPolicy::Reroute
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn estimated_partition_loads(&self) -> Option<Vec<f64>> {
        Some(self.cell_input.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_relation(n: usize, dims: usize, lo: f64, hi: f64, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut r = Relation::with_capacity(dims, n);
        let mut key = vec![0.0; dims];
        for _ in 0..n {
            for k in key.iter_mut() {
                *k = rng.gen_range(lo..hi);
            }
            r.push(&key);
        }
        r
    }

    fn exactly_once(grid: &GridPartitioner, s: &Relation, t: &Relation, band: &BandCondition) {
        let mut s_parts = Vec::new();
        let mut t_parts = Vec::new();
        for (si, sk) in s.iter().enumerate() {
            s_parts.clear();
            grid.assign_s(&sk, si as u64, &mut s_parts);
            assert_eq!(s_parts.len(), 1, "S-tuples go to exactly one cell");
            for (ti, tk) in t.iter().enumerate() {
                if !band.matches(&sk, &tk) {
                    continue;
                }
                t_parts.clear();
                grid.assign_t(&tk, ti as u64, &mut t_parts);
                let common = s_parts.iter().filter(|p| t_parts.contains(p)).count();
                assert_eq!(common, 1, "pair (S#{si}, T#{ti}) must meet exactly once");
            }
        }
    }

    #[test]
    fn exactly_once_1d() {
        let s = random_relation(300, 1, 0.0, 50.0, 1);
        let t = random_relation(300, 1, 0.0, 50.0, 2);
        let band = BandCondition::symmetric(&[1.0]);
        let grid = GridPartitioner::build(&s, &t, &band, 1.0);
        exactly_once(&grid, &s, &t, &band);
    }

    #[test]
    fn exactly_once_2d_with_coarser_grid() {
        let s = random_relation(200, 2, 0.0, 20.0, 3);
        let t = random_relation(200, 2, 0.0, 20.0, 4);
        let band = BandCondition::symmetric(&[0.5, 1.0]);
        for scale in [1.0, 2.0, 4.0] {
            let grid = GridPartitioner::build(&s, &t, &band, scale);
            exactly_once(&grid, &s, &t, &band);
        }
    }

    #[test]
    fn t_duplication_is_bounded_by_3_pow_d() {
        let s = random_relation(500, 2, 0.0, 30.0, 5);
        let t = random_relation(500, 2, 0.0, 30.0, 6);
        let band = BandCondition::symmetric(&[1.0, 1.0]);
        let grid = GridPartitioner::build(&s, &t, &band, 1.0);
        let mut out = Vec::new();
        let mut max_copies = 0;
        for (i, key) in t.iter().enumerate() {
            out.clear();
            grid.assign_t(&key, i as u64, &mut out);
            assert!(!out.is_empty());
            max_copies = max_copies.max(out.len());
        }
        assert!(
            max_copies <= 9,
            "T copied to at most 3^2 cells, saw {max_copies}"
        );
        assert!(max_copies >= 4, "dense data should hit multi-cell copies");
    }

    #[test]
    fn coarser_grid_has_fewer_cells_and_less_duplication() {
        let s = random_relation(1000, 1, 0.0, 100.0, 7);
        let t = random_relation(1000, 1, 0.0, 100.0, 8);
        let band = BandCondition::symmetric(&[1.0]);
        let fine = GridPartitioner::build(&s, &t, &band, 1.0);
        let coarse = GridPartitioner::build(&s, &t, &band, 8.0);
        assert!(coarse.num_cells() < fine.num_cells());
        assert_eq!(fine.num_partitions(), fine.num_cells());
        let dup = |g: &GridPartitioner| g.count_total_input(&s, &t);
        assert!(dup(&coarse) < dup(&fine));
    }

    #[test]
    fn skewed_data_gives_skewed_cell_loads() {
        // All S-tuples in one tiny spot: that cell's input dwarfs the others (Lemma 2's
        // precondition).
        let mut s = Relation::new(1);
        for i in 0..500 {
            s.push(&[10.0 + (i as f64) * 1e-6]);
        }
        let t = random_relation(500, 1, 0.0, 100.0, 9);
        let band = BandCondition::symmetric(&[1.0]);
        let grid = GridPartitioner::build(&s, &t, &band, 1.0);
        let loads = grid.estimated_partition_loads().unwrap();
        let max = loads.iter().cloned().fold(0.0, f64::max);
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        assert!(
            max > mean * 10.0,
            "hot cell must stand out (max {max}, mean {mean})"
        );
    }

    /// Block routing (vectorized column-major cell indexing on the live kernel)
    /// must reproduce the per-tuple assignments exactly, including on keys far
    /// outside every materialized cell and across asymmetric bands — the cases
    /// where a cell-index off-by-one would silently change the odometer box.
    #[test]
    fn block_routing_matches_per_tuple_on_adversarial_keys() {
        let s = random_relation(300, 2, 0.0, 25.0, 20);
        let t = random_relation(300, 2, 0.0, 25.0, 21);
        let band = BandCondition::try_asymmetric(&[0.7, 0.0], &[0.0, 1.3]).unwrap();
        let grid = GridPartitioner::build(&s, &t, &band, 1.0);

        // Keys the grid was NOT built from: cell boundaries, far outliers, huge
        // magnitudes (saturating casts), and negative coordinates.
        let mut probe = random_relation(200, 2, -40.0, 60.0, 22);
        probe.push(&[0.0, 0.0]);
        probe.push(&[-0.0, 25.0]);
        probe.push(&[1e18, -1e18]);
        probe.push(&[f64::MAX, f64::MIN]);
        probe.push(&[0.7, 1.3]);

        for t_side in [false, true] {
            let mut expected = Vec::new();
            let mut buf = Vec::new();
            for i in 0..probe.len() {
                buf.clear();
                if t_side {
                    grid.assign_t(&probe.key(i), i as u64, &mut buf);
                } else {
                    grid.assign_s(&probe.key(i), i as u64, &mut buf);
                }
                expected.extend(buf.iter().map(|&p| (p, i as u32)));
            }
            let mut sink = AssignmentSink::new(grid.num_partitions());
            let mut lo = 0;
            while lo < probe.len() {
                let hi = (lo + 37).min(probe.len());
                if t_side {
                    grid.assign_t_block(&probe, lo..hi, &mut sink);
                } else {
                    grid.assign_s_block(&probe, lo..hi, &mut sink);
                }
                lo = hi;
            }
            assert_eq!(
                sink.pairs(),
                &expected[..],
                "block routing diverged from per-tuple (t_side={t_side})"
            );
        }
    }

    #[test]
    fn names_reflect_scale() {
        let s = random_relation(50, 1, 0.0, 10.0, 10);
        let t = random_relation(50, 1, 0.0, 10.0, 11);
        let band = BandCondition::symmetric(&[1.0]);
        assert_eq!(
            GridPartitioner::build(&s, &t, &band, 1.0).name(),
            "Grid-eps"
        );
        assert_eq!(
            GridPartitioner::build(&s, &t, &band, 4.0).name(),
            "Grid-4eps"
        );
    }

    #[test]
    #[should_panic(expected = "band width 0")]
    fn zero_band_width_rejected() {
        let s = random_relation(10, 1, 0.0, 1.0, 12);
        let t = random_relation(10, 1, 0.0, 1.0, 13);
        let band = BandCondition::equi(1);
        let _ = GridPartitioner::build(&s, &t, &band, 1.0);
    }

    #[test]
    fn cell_sizes_follow_band_and_scale() {
        let s = random_relation(20, 2, 0.0, 10.0, 14);
        let t = random_relation(20, 2, 0.0, 10.0, 15);
        let band = BandCondition::symmetric(&[0.5, 2.0]);
        let grid = GridPartitioner::build(&s, &t, &band, 3.0);
        assert_eq!(grid.cell_sizes(), &[1.5, 6.0]);
    }
}
