//! Grid\*: cost-model-driven grid-size tuning (Section 6.5 of the paper).
//!
//! Plain Grid-ε fixes the cell size to the band width, which causes `O(3^d)` input
//! duplication. Grid\* tries coarser grids with cell side `j · ε_i` for `j = 1, 2, 3, …`,
//! predicts the running time of each candidate with the same running-time model used by
//! RecPart and CSIO (`β₀ + β₁·I + β₂·I_m + β₃·O_m`, estimated from per-cell input counts
//! and an output sample), and stops at the first local minimum.

use crate::grid::GridPartitioner;
use distsim::CostModel;
use rand::Rng;
use recpart::{BandCondition, OutputSample, Partitioner, Relation, SampleConfig, ScatterPolicy};
use serde::{Deserialize, Serialize};

/// Report of the Grid\* search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridStarReport {
    /// The chosen cell-size multiplier `j`.
    pub chosen_scale: f64,
    /// Predicted join time of every candidate that was evaluated, as `(j, time)` pairs.
    pub evaluated: Vec<(f64, f64)>,
    /// Wall-clock optimization time in seconds.
    pub optimization_seconds: f64,
}

/// The Grid\* partitioner: a [`GridPartitioner`] whose cell size was chosen by the cost
/// model.
#[derive(Debug, Clone)]
pub struct GridStarPartitioner {
    inner: GridPartitioner,
    report: GridStarReport,
}

impl GridStarPartitioner {
    /// Run the Grid\* search: evaluate multipliers `1, 2, 3, …` (up to `max_scale`) and
    /// keep the grid with the lowest predicted join time, stopping one step after the
    /// predictions stop improving.
    pub fn build<R: Rng + ?Sized>(
        s: &Relation,
        t: &Relation,
        band: &BandCondition,
        workers: usize,
        cost_model: &CostModel,
        max_scale: usize,
        rng: &mut R,
    ) -> GridStarPartitioner {
        assert!(workers > 0 && max_scale >= 1);
        let start = std::time::Instant::now();

        // One output sample shared by all candidate evaluations.
        let sample_cfg = SampleConfig {
            input_sample_size: 4_096,
            output_sample_size: 2_048,
            output_probe_count: 1_024,
        };
        let output_sample = OutputSample::draw(s, t, band, &sample_cfg, rng);

        let mut evaluated = Vec::new();
        let mut best: Option<(f64, f64, GridPartitioner)> = None;
        let mut previous_time = f64::INFINITY;
        for j in 1..=max_scale {
            let scale = j as f64;
            let grid = GridPartitioner::build(s, t, band, scale);
            let time = predict_time(&grid, s, t, &output_sample, workers, cost_model);
            evaluated.push((scale, time));
            let is_better = best.as_ref().map(|(_, bt, _)| time < *bt).unwrap_or(true);
            if is_better {
                best = Some((scale, time, grid));
            }
            // Local-minimum stop: once the prediction starts rising, stop searching.
            if time > previous_time {
                break;
            }
            previous_time = time;
        }
        let (chosen_scale, _, inner) = best.expect("at least one candidate evaluated");
        GridStarPartitioner {
            inner,
            report: GridStarReport {
                chosen_scale,
                evaluated,
                optimization_seconds: start.elapsed().as_secs_f64(),
            },
        }
    }

    /// The search report (chosen multiplier and every evaluated candidate).
    pub fn report(&self) -> &GridStarReport {
        &self.report
    }

    /// The underlying grid.
    pub fn grid(&self) -> &GridPartitioner {
        &self.inner
    }
}

/// Predict the join time of a grid partitioning from per-cell input counts and the
/// output sample, using an LPT mapping of cells onto workers.
fn predict_time(
    grid: &GridPartitioner,
    s: &Relation,
    t: &Relation,
    output_sample: &OutputSample,
    workers: usize,
    cost_model: &CostModel,
) -> f64 {
    let partitions = grid.num_partitions();
    let mut cell_input = vec![0.0f64; partitions];
    let mut cell_output = vec![0.0f64; partitions];
    let mut buf = Vec::new();

    // Per-cell input counts via block routing (a count-only sink is exactly the
    // histogram this needs — no pairs are ever materialized), chunked so the
    // per-block work stays bounded.
    let mut sink = recpart::AssignmentSink::counting(partitions);
    for (rel, is_s) in [(s, true), (t, false)] {
        let mut lo = 0;
        while lo < rel.len() {
            let hi = (lo + recpart::DEFAULT_BLOCK_TUPLES).min(rel.len());
            sink.reset(partitions);
            if is_s {
                grid.assign_s_block(rel, lo..hi, &mut sink);
            } else {
                grid.assign_t_block(rel, lo..hi, &mut sink);
            }
            for (cell, &count) in cell_input.iter_mut().zip(sink.counts()) {
                *cell += count as f64;
            }
            lo = hi;
        }
    }
    // Output located at the cell of the sampled pair's S-side key.
    let out_weight = output_sample.weight();
    for i in 0..output_sample.len() {
        buf.clear();
        grid.assign_s(output_sample.s_key(i), i as u64, &mut buf);
        for &p in &buf {
            cell_output[p as usize] += out_weight;
        }
    }

    let total_input: f64 = cell_input.iter().sum();

    // LPT mapping onto workers using the cost model's per-worker weights.
    let mut order: Vec<usize> = (0..partitions).collect();
    let load = |i: f64, o: f64| cost_model.beta2 * i + cost_model.beta3 * o;
    // Total order `(load desc, cell index asc)` via `total_cmp`, matching the
    // executor's LPT mapping: `partial_cmp(..).unwrap_or(Equal)` under an
    // unstable sort left the tied-cell order at the mercy of the std sort
    // implementation, and with it the predicted max-loaded worker.
    order.sort_unstable_by(|&a, &b| {
        load(cell_input[b], cell_output[b])
            .total_cmp(&load(cell_input[a], cell_output[a]))
            .then_with(|| a.cmp(&b))
    });
    let mut worker_in = vec![0.0f64; workers];
    let mut worker_out = vec![0.0f64; workers];
    for &c in &order {
        let target = (0..workers)
            .min_by(|&a, &b| {
                load(worker_in[a], worker_out[a]).total_cmp(&load(worker_in[b], worker_out[b]))
            })
            .expect("at least one worker");
        worker_in[target] += cell_input[c];
        worker_out[target] += cell_output[c];
    }
    let (max_in, max_out) = (0..workers)
        .map(|w| (worker_in[w], worker_out[w]))
        .max_by(|a, b| load(a.0, a.1).total_cmp(&load(b.0, b.1)))
        .expect("at least one worker");

    cost_model.predict(total_input, max_in, max_out)
}

impl Partitioner for GridStarPartitioner {
    fn num_partitions(&self) -> usize {
        self.inner.num_partitions()
    }
    fn assign_s(&self, key: &[f64], tuple_id: u64, out: &mut Vec<recpart::PartitionId>) {
        self.inner.assign_s(key, tuple_id, out)
    }
    fn assign_t(&self, key: &[f64], tuple_id: u64, out: &mut Vec<recpart::PartitionId>) {
        self.inner.assign_t(key, tuple_id, out)
    }
    fn assign_s_block(
        &self,
        rel: &Relation,
        rows: std::ops::Range<usize>,
        sink: &mut recpart::AssignmentSink,
    ) {
        self.inner.assign_s_block(rel, rows, sink)
    }
    fn assign_t_block(
        &self,
        rel: &Relation,
        rows: std::ops::Range<usize>,
        sink: &mut recpart::AssignmentSink,
    ) {
        self.inner.assign_t_block(rel, rows, sink)
    }
    fn count_total_input(&self, s: &Relation, t: &Relation) -> u64 {
        self.inner.count_total_input(s, t)
    }
    fn scatter_policy(&self) -> ScatterPolicy {
        self.inner.scatter_policy()
    }
    fn name(&self) -> &str {
        "Grid*"
    }
    fn estimated_partition_loads(&self) -> Option<Vec<f64>> {
        self.inner.estimated_partition_loads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pareto_relation(n: usize, dims: usize, z: f64, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut r = Relation::with_capacity(dims, n);
        let mut key = vec![0.0; dims];
        for _ in 0..n {
            for k in key.iter_mut() {
                let u: f64 = rng.gen_range(0.0..1.0f64);
                *k = (1.0 - u).powf(-1.0 / z);
            }
            r.push(&key);
        }
        r
    }

    #[test]
    fn grid_star_prefers_coarser_grid_than_eps_on_dense_data() {
        // Dense, similarly distributed inputs: a coarser grid cuts duplication a lot while
        // load balance stays fine (Table 5's message).
        let s = pareto_relation(3000, 2, 1.5, 1);
        let t = pareto_relation(3000, 2, 1.5, 2);
        let band = BandCondition::symmetric(&[0.05, 0.05]);
        let mut rng = StdRng::seed_from_u64(3);
        let gs = GridStarPartitioner::build(&s, &t, &band, 8, &CostModel::default(), 64, &mut rng);
        assert!(
            gs.report().chosen_scale > 1.0,
            "expected a multiplier > 1, got {}",
            gs.report().chosen_scale
        );
        assert!(gs.report().evaluated.len() >= 2);
        // Duplication of the chosen grid must not exceed plain Grid-ε's.
        let plain = GridPartitioner::build(&s, &t, &band, 1.0);
        assert!(gs.count_total_input(&s, &t) <= plain.count_total_input(&s, &t));
    }

    #[test]
    fn exactly_once_still_holds_for_chosen_grid() {
        let s = pareto_relation(200, 1, 1.5, 4);
        let t = pareto_relation(200, 1, 1.5, 5);
        let band = BandCondition::symmetric(&[0.1]);
        let mut rng = StdRng::seed_from_u64(6);
        let gs = GridStarPartitioner::build(&s, &t, &band, 4, &CostModel::default(), 16, &mut rng);
        let mut s_parts = Vec::new();
        let mut t_parts = Vec::new();
        for (si, sk) in s.iter().enumerate() {
            s_parts.clear();
            gs.assign_s(&sk, si as u64, &mut s_parts);
            for (ti, tk) in t.iter().enumerate() {
                if !band.matches(&sk, &tk) {
                    continue;
                }
                t_parts.clear();
                gs.assign_t(&tk, ti as u64, &mut t_parts);
                let common = s_parts.iter().filter(|p| t_parts.contains(p)).count();
                assert_eq!(common, 1);
            }
        }
    }

    #[test]
    fn report_contains_monotone_scales() {
        let s = pareto_relation(500, 1, 1.0, 7);
        let t = pareto_relation(500, 1, 1.0, 8);
        let band = BandCondition::symmetric(&[0.2]);
        let mut rng = StdRng::seed_from_u64(9);
        let gs = GridStarPartitioner::build(&s, &t, &band, 4, &CostModel::default(), 10, &mut rng);
        let scales: Vec<f64> = gs.report().evaluated.iter().map(|(j, _)| *j).collect();
        for w in scales.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert_eq!(gs.name(), "Grid*");
        assert!(gs.report().optimization_seconds >= 0.0);
    }
}
