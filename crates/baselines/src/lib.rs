//! # baselines — competitor partitioners for distributed band-joins
//!
//! The RecPart paper compares against three main competitors plus the distributed
//! IEJoin partitioning; all of them are implemented here behind the common
//! [`recpart::Partitioner`] trait so that the `distsim` executor can measure them under
//! identical conditions:
//!
//! * [`one_bucket`] — **1-Bucket** (Okcan & Riedewald): covers the entire `S × T` join
//!   matrix with an `r × c` grid; each S-tuple is assigned to a random row (and hence
//!   copied to all `c` cells of that row), each T-tuple to a random column. Near-perfect
//!   load balance, ~`√w` input duplication, independent of the join condition.
//! * [`grid`] — **Grid-ε** (Soloviev's truncating hash generalized to `d` dimensions):
//!   partitions the attribute space into cells of side `ε_i` (or a multiple); S goes to
//!   its cell, T is copied to every neighbouring cell its ε-range intersects.
//! * [`grid_star`] — **Grid\***: the paper's extension that tunes the grid cell size with
//!   the running-time cost model, coarsening until the predicted time stops improving.
//! * [`csio`] — **CSIO** (Vitorovic et al.): range-partitions a linearization of the
//!   attribute space with approximate quantiles, builds the (coarsened) candidate join
//!   matrix from input and output samples, and covers the candidate cells with at most
//!   `w` rectangles minimizing the maximum rectangle load (an M-Bucket-I style covering
//!   search).
//! * [`iejoin`] — the quantile/block partitioning used by distributed **IEJoin**, with
//!   its `sizePerBlock` knob.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod csio;
pub mod grid;
pub mod grid_star;
pub mod iejoin;
pub mod one_bucket;

pub use csio::{CsioConfig, CsioPartitioner, LinearizationOrder};
pub use grid::GridPartitioner;
pub use grid_star::{GridStarPartitioner, GridStarReport};
pub use iejoin::IEJoinPartitioner;
pub use one_bucket::OneBucket;
