//! The quantile/block partitioning used by distributed IEJoin (Khayyat et al., VLDBJ
//! 2017), as compared against in Section 6.6 / Appendix A.1 of the paper.
//!
//! Distributed IEJoin sorts each input on one join attribute and range-partitions it
//! into blocks of (roughly) `sizePerBlock` tuples using approximate quantiles. Every
//! pair of blocks whose attribute ranges can contain joining tuples (i.e. whose ranges
//! are within band width of each other) becomes a unit of work assigned to some worker.
//! Here every such *joinable block pair* is one logical partition: an S-tuple is sent to
//! every partition involving its block, a T-tuple to every partition involving its
//! block, and the pair of blocks containing a matching tuple pair is unique — so the
//! exactly-once property holds. The executor's LPT mapping then spreads the block pairs
//! over the workers, mirroring how IEJoin schedules block-pair tasks.
//!
//! The paper's finding — reproduced by `exp_table07_iejoin` — is that direct
//! quantile-based partitioning duplicates far more input than RecPart because block
//! boundaries cut through dense regions and no covering step merges joinable pairs.

use recpart::{AssignmentSink, BandCondition, PartitionId, Partitioner, Relation, ScatterPolicy};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// The distributed-IEJoin style block partitioner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IEJoinPartitioner {
    /// Upper boundaries of the S blocks on dimension 0 (last boundary is +∞).
    s_bounds: Vec<f64>,
    /// Upper boundaries of the T blocks on dimension 0.
    t_bounds: Vec<f64>,
    /// For every S block, the partitions (joinable block pairs) it participates in.
    s_block_partitions: Vec<Vec<PartitionId>>,
    /// For every T block, the partitions it participates in.
    t_block_partitions: Vec<Vec<PartitionId>>,
    /// Number of joinable block pairs.
    num_partitions: usize,
    /// The `sizePerBlock` parameter used.
    size_per_block: usize,
}

impl IEJoinPartitioner {
    /// Build the block partitioning with the given `sizePerBlock`.
    pub fn build(
        s: &Relation,
        t: &Relation,
        band: &BandCondition,
        size_per_block: usize,
    ) -> IEJoinPartitioner {
        assert!(size_per_block > 0, "sizePerBlock must be positive");
        let s_bounds = block_boundaries(s, size_per_block);
        let t_bounds = block_boundaries(t, size_per_block);
        let s_blocks = s_bounds.len();
        let t_blocks = t_bounds.len();

        // Block value ranges on dimension 0: block i covers (prev_bound, bound_i].
        let range_of = |bounds: &[f64], i: usize| -> (f64, f64) {
            let lo = if i == 0 {
                f64::NEG_INFINITY
            } else {
                bounds[i - 1]
            };
            (lo, bounds[i])
        };

        let mut s_block_partitions = vec![Vec::new(); s_blocks];
        let mut t_block_partitions = vec![Vec::new(); t_blocks];
        let mut num_partitions = 0usize;
        for (si, s_parts) in s_block_partitions.iter_mut().enumerate() {
            let (s_lo, s_hi) = range_of(&s_bounds, si);
            for (ti, t_parts) in t_block_partitions.iter_mut().enumerate() {
                let (t_lo, t_hi) = range_of(&t_bounds, ti);
                // Joinable iff some s in (s_lo, s_hi] can match some t in (t_lo, t_hi]:
                // s ∈ [t − ε_lo, t + ε_hi]  ⇔  intervals [s_lo, s_hi] and
                // [t_lo − ε_lo, t_hi + ε_hi] overlap.
                let t_lo_ext = t_lo - band.eps_low(0);
                let t_hi_ext = t_hi + band.eps_high(0);
                if s_hi >= t_lo_ext && s_lo <= t_hi_ext {
                    let pid = num_partitions as PartitionId;
                    s_parts.push(pid);
                    t_parts.push(pid);
                    num_partitions += 1;
                }
            }
        }
        // Guarantee h(x) ≠ ∅ even for blocks with no joinable counterpart: give such
        // blocks a private partition (it will simply produce no output).
        for parts in s_block_partitions
            .iter_mut()
            .chain(t_block_partitions.iter_mut())
        {
            if parts.is_empty() {
                parts.push(num_partitions as PartitionId);
                num_partitions += 1;
            }
        }

        IEJoinPartitioner {
            s_bounds,
            t_bounds,
            s_block_partitions,
            t_block_partitions,
            num_partitions,
            size_per_block,
        }
    }

    /// The `sizePerBlock` parameter this partitioner was built with.
    pub fn size_per_block(&self) -> usize {
        self.size_per_block
    }

    /// Number of S blocks.
    pub fn s_blocks(&self) -> usize {
        self.s_bounds.len()
    }

    /// Number of T blocks.
    pub fn t_blocks(&self) -> usize {
        self.t_bounds.len()
    }

    fn block_of(bounds: &[f64], value: f64) -> usize {
        bounds
            .partition_point(|&b| b < value)
            .min(bounds.len().saturating_sub(1))
    }
}

/// Sort the relation on dimension 0 and emit one upper boundary per `size_per_block`
/// tuples (the last boundary is `+∞` so every value falls into some block).
fn block_boundaries(relation: &Relation, size_per_block: usize) -> Vec<f64> {
    let mut values: Vec<f64> = (0..relation.len()).map(|i| relation.value(i, 0)).collect();
    values.sort_unstable_by(f64::total_cmp);
    let mut bounds = Vec::new();
    let mut i = size_per_block;
    while i < values.len() {
        bounds.push(values[i - 1]);
        i += size_per_block;
    }
    bounds.push(f64::INFINITY);
    bounds
}

impl Partitioner for IEJoinPartitioner {
    fn num_partitions(&self) -> usize {
        self.num_partitions.max(1)
    }

    fn assign_s(&self, key: &[f64], _tuple_id: u64, out: &mut Vec<PartitionId>) {
        let block = Self::block_of(&self.s_bounds, key[0]);
        out.extend_from_slice(&self.s_block_partitions[block]);
    }

    fn assign_t(&self, key: &[f64], _tuple_id: u64, out: &mut Vec<PartitionId>) {
        let block = Self::block_of(&self.t_bounds, key[0]);
        out.extend_from_slice(&self.t_block_partitions[block]);
    }

    // Block routing: only dimension 0 decides the quantile block, so a routed block
    // is one `value → partition_point → emit-slice` loop over the column.
    fn assign_s_block(&self, rel: &Relation, rows: Range<usize>, sink: &mut AssignmentSink) {
        sink.reserve(rows.len());
        for i in rows {
            let block = Self::block_of(&self.s_bounds, rel.value(i, 0));
            for &p in &self.s_block_partitions[block] {
                sink.push(p, i as u32);
            }
        }
    }

    fn assign_t_block(&self, rel: &Relation, rows: Range<usize>, sink: &mut AssignmentSink) {
        sink.reserve(rows.len());
        for i in rows {
            let block = Self::block_of(&self.t_bounds, rel.value(i, 0));
            for &p in &self.t_block_partitions[block] {
                sink.push(p, i as u32);
            }
        }
    }

    fn scatter_policy(&self) -> ScatterPolicy {
        // Binary search into quantile blocks plus precomputed lists: cheap to re-run.
        ScatterPolicy::Reroute
    }

    fn name(&self) -> &str {
        "IEJoin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_relation(n: usize, dims: usize, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut r = Relation::with_capacity(dims, n);
        let mut key = vec![0.0; dims];
        for _ in 0..n {
            for k in key.iter_mut() {
                *k = rng.gen_range(0.0..100.0);
            }
            r.push(&key);
        }
        r
    }

    #[test]
    fn blocks_have_expected_count() {
        let s = random_relation(1000, 1, 1);
        let t = random_relation(500, 1, 2);
        let band = BandCondition::symmetric(&[1.0]);
        let p = IEJoinPartitioner::build(&s, &t, &band, 100);
        assert_eq!(p.s_blocks(), 10);
        assert_eq!(p.t_blocks(), 5);
        assert_eq!(p.size_per_block(), 100);
    }

    #[test]
    fn exactly_once_for_matching_pairs() {
        let s = random_relation(300, 2, 3);
        let t = random_relation(300, 2, 4);
        let band = BandCondition::symmetric(&[2.0, 50.0]);
        let p = IEJoinPartitioner::build(&s, &t, &band, 64);
        let mut s_parts = Vec::new();
        let mut t_parts = Vec::new();
        for (si, sk) in s.iter().enumerate() {
            s_parts.clear();
            p.assign_s(&sk, si as u64, &mut s_parts);
            assert!(!s_parts.is_empty());
            for (ti, tk) in t.iter().enumerate() {
                if !band.matches(&sk, &tk) {
                    continue;
                }
                t_parts.clear();
                p.assign_t(&tk, ti as u64, &mut t_parts);
                let common = s_parts.iter().filter(|x| t_parts.contains(x)).count();
                assert_eq!(common, 1, "pair (S#{si}, T#{ti})");
            }
        }
    }

    #[test]
    fn every_tuple_is_assigned_somewhere() {
        // Far-apart inputs: no joinable pairs at all, but h(x) must still be non-empty.
        let mut s = Relation::new(1);
        let mut t = Relation::new(1);
        for i in 0..50 {
            s.push(&[i as f64]);
            t.push(&[1e6 + i as f64]);
        }
        let band = BandCondition::symmetric(&[1.0]);
        let p = IEJoinPartitioner::build(&s, &t, &band, 10);
        let mut out = Vec::new();
        for (i, key) in s.iter().enumerate() {
            out.clear();
            p.assign_s(&key, i as u64, &mut out);
            assert!(!out.is_empty());
        }
        for (i, key) in t.iter().enumerate() {
            out.clear();
            p.assign_t(&key, i as u64, &mut out);
            assert!(!out.is_empty());
        }
    }

    #[test]
    fn smaller_blocks_mean_more_partitions_and_duplication() {
        let s = random_relation(2000, 1, 5);
        let t = random_relation(2000, 1, 6);
        let band = BandCondition::symmetric(&[3.0]);
        let fine = IEJoinPartitioner::build(&s, &t, &band, 50);
        let coarse = IEJoinPartitioner::build(&s, &t, &band, 500);
        assert!(fine.num_partitions() > coarse.num_partitions());
        assert!(fine.count_total_input(&s, &t) > coarse.count_total_input(&s, &t));
    }

    #[test]
    fn wider_band_means_more_joinable_pairs() {
        let s = random_relation(1000, 1, 7);
        let t = random_relation(1000, 1, 8);
        let narrow = IEJoinPartitioner::build(&s, &t, &BandCondition::symmetric(&[0.5]), 100);
        let wide = IEJoinPartitioner::build(&s, &t, &BandCondition::symmetric(&[20.0]), 100);
        assert!(wide.num_partitions() > narrow.num_partitions());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_block_size_rejected() {
        let s = random_relation(10, 1, 9);
        let t = random_relation(10, 1, 10);
        let _ = IEJoinPartitioner::build(&s, &t, &BandCondition::symmetric(&[1.0]), 0);
    }
}
