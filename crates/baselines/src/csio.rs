//! CSIO (Vitorovic et al., "Load balancing and skew resilience for parallel joins",
//! ICDE 2016) — the state-of-the-art join-matrix covering approach the paper compares
//! against.
//!
//! CSIO's pipeline, reproduced here:
//!
//! 1. **Linearize** the d-dimensional join-attribute space into a total order
//!    ([`LinearizationOrder::RowMajor`] over a coarse grid whose most-significant-
//!    dimension stripe is at least one band width tall — Section 5.2 of the paper shows
//!    this minimizes candidate cells — or a [`LinearizationOrder::Block`]/Z-order
//!    variant used for the ablation).
//! 2. **Range-partition** `S` (matrix rows) and `T` (matrix columns) on approximate
//!    quantiles of the linearized key, computed from an input sample.
//! 3. Build the **candidate matrix**: cell `(i, j)` is a candidate iff some tuple of row
//!    `i` can join some tuple of column `j` (determined conservatively from the actual
//!    per-range attribute bounds), and estimate per-cell output from an output sample.
//! 4. **Coarsen** the matrix to a tractable size and **cover** all candidate cells with
//!    at most `w` non-overlapping rectangles minimizing the maximum rectangle load, via
//!    a binary search on the load bound with an M-Bucket-I style greedy cover (this is
//!    the expensive optimization step the paper highlights).
//!
//! Each cover rectangle is one partition: an S-tuple is sent to every rectangle that
//! intersects its row, a T-tuple to every rectangle intersecting its column; the unique
//! rectangle covering cell `(row(s), col(t))` receives both, so every result is produced
//! exactly once.

use rand::Rng;
use recpart::{
    AssignmentSink, BandCondition, InputSample, OutputSample, PartitionId, Partitioner, Relation,
    SampleConfig, ScatterPolicy,
};
use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::time::Instant;

/// How the multidimensional attribute space is mapped to a total order (Section 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LinearizationOrder {
    /// Row-major / lexicographic order with dimension 0 most significant. Ranges are
    /// thin stripes along dimension 0, which minimizes candidate cells when the stripe
    /// height is at least the band width.
    #[default]
    RowMajor,
    /// Bit-interleaved (Morton / Z-order) order: ranges are square-ish blocks. Used to
    /// reproduce the paper's Figure 8 ablation.
    Block,
}

/// Tuning knobs of the CSIO optimization pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CsioConfig {
    /// Number of quantile ranges per input before coarsening.
    pub quantiles: usize,
    /// Maximum matrix dimension used by the rectangle-covering search (ranges are merged
    /// down to this size first). Larger values find better covers but optimization cost
    /// grows steeply — the trade-off the paper calls out.
    pub max_matrix_dim: usize,
    /// Linearization order.
    pub order: LinearizationOrder,
    /// Input-sample size used for the quantiles.
    pub input_sample_size: usize,
    /// Output-sample size used for per-cell output estimates.
    pub output_sample_size: usize,
    /// Number of grid buckets per dimension used by the linearization.
    pub buckets_per_dim: usize,
}

impl Default for CsioConfig {
    fn default() -> Self {
        CsioConfig {
            quantiles: 256,
            max_matrix_dim: 96,
            order: LinearizationOrder::RowMajor,
            input_sample_size: 8_192,
            output_sample_size: 2_048,
            buckets_per_dim: 1_024,
        }
    }
}

/// One cover rectangle `[row_lo, row_hi] × [col_lo, col_hi]` (inclusive, in coarsened
/// matrix coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct CoverRect {
    row_lo: u32,
    row_hi: u32,
    col_lo: u32,
    col_hi: u32,
}

/// Report of the CSIO optimization phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsioReport {
    /// Number of matrix rows / columns after coarsening.
    pub matrix_rows: usize,
    /// Number of matrix columns after coarsening.
    pub matrix_cols: usize,
    /// Number of candidate cells that had to be covered.
    pub candidate_cells: usize,
    /// Number of cover rectangles (≤ w).
    pub rectangles: usize,
    /// Wall-clock optimization time in seconds.
    pub optimization_seconds: f64,
}

/// The CSIO partitioner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CsioPartitioner {
    lin: Linearizer,
    /// Exclusive upper key boundaries of the S ranges (last is `u128::MAX`).
    s_bounds: Vec<u128>,
    /// Exclusive upper key boundaries of the T ranges.
    t_bounds: Vec<u128>,
    /// Partitions every S range participates in.
    s_range_partitions: Vec<Vec<PartitionId>>,
    /// Partitions every T range participates in.
    t_range_partitions: Vec<Vec<PartitionId>>,
    num_partitions: usize,
    report: CsioReport,
}

impl CsioPartitioner {
    /// Run the CSIO optimization pipeline and build the partitioner.
    pub fn build<R: Rng + ?Sized>(
        s: &Relation,
        t: &Relation,
        band: &BandCondition,
        workers: usize,
        config: &CsioConfig,
        rng: &mut R,
    ) -> CsioPartitioner {
        assert!(workers > 0);
        assert!(config.quantiles >= 2 && config.max_matrix_dim >= 2);
        let start = Instant::now();
        let dims = band.dims();

        // --- Samples (used for the linearization grid, the quantile ranges, and the
        //     per-cell output estimates). ---
        let sample_cfg = SampleConfig {
            input_sample_size: config.input_sample_size,
            output_sample_size: config.output_sample_size,
            output_probe_count: config.output_sample_size,
        };
        let s_sample = InputSample::draw(s, config.input_sample_size, rng);
        let t_sample = InputSample::draw(t, config.input_sample_size, rng);

        // --- Linearization grid: equi-depth bucket boundaries per dimension, derived
        //     from the combined sample so that skewed value distributions still spread
        //     over many buckets. Section 5.2: the stripes of the most significant
        //     dimension must be at least one band width tall, so boundaries closer than
        //     ε₀ are merged in dimension 0.
        let lin = Linearizer::fit(
            dims,
            config.order,
            config.buckets_per_dim,
            band,
            s_sample.iter().chain(t_sample.iter()),
        );

        // --- Quantile ranges from input samples. ---
        let s_bounds = quantile_bounds(&lin, s_sample.iter(), config.quantiles);
        let t_bounds = quantile_bounds(&lin, t_sample.iter(), config.quantiles);
        let rows = s_bounds.len();
        let cols = t_bounds.len();

        // --- Per-range statistics from the full inputs (counts + attribute bounds). ---
        let mut s_stats = RangeStats::new(rows, dims);
        for key in s.iter() {
            let r = range_of(&s_bounds, lin.key(&key));
            s_stats.add(r, &key);
        }
        let mut t_stats = RangeStats::new(cols, dims);
        for key in t.iter() {
            let c = range_of(&t_bounds, lin.key(&key));
            t_stats.add(c, &key);
        }

        // --- Per-cell output estimates from the output sample. ---
        let o_sample = OutputSample::draw(s, t, band, &sample_cfg, rng);
        let mut cell_output = vec![0.0f64; rows * cols];
        let out_weight = o_sample.weight();
        for i in 0..o_sample.len() {
            let r = range_of(&s_bounds, lin.key(o_sample.s_key(i)));
            let c = range_of(&t_bounds, lin.key(o_sample.t_key(i)));
            cell_output[r * cols + c] += out_weight;
        }

        // --- Coarsen to the covering matrix. ---
        let row_groups = group_ranges(rows, config.max_matrix_dim);
        let col_groups = group_ranges(cols, config.max_matrix_dim);
        let matrix = CandidateMatrix::build(
            band,
            &s_stats,
            &t_stats,
            &cell_output,
            cols,
            &row_groups,
            &col_groups,
        );

        // --- Rectangle covering (binary search on the max rectangle load). ---
        let rects = matrix.cover(workers);

        // --- Translate rectangles (coarse coordinates) back to quantile ranges. ---
        let mut s_range_partitions: Vec<Vec<PartitionId>> = vec![Vec::new(); rows];
        let mut t_range_partitions: Vec<Vec<PartitionId>> = vec![Vec::new(); cols];
        for (pid, rect) in rects.iter().enumerate() {
            let pid = pid as PartitionId;
            for group in rect.row_lo..=rect.row_hi {
                for r in row_groups[group as usize].clone() {
                    s_range_partitions[r].push(pid);
                }
            }
            for group in rect.col_lo..=rect.col_hi {
                for c in col_groups[group as usize].clone() {
                    t_range_partitions[c].push(pid);
                }
            }
        }
        // Private fallback partitions so every tuple is assigned somewhere.
        let mut num_partitions = rects.len();
        for parts in s_range_partitions
            .iter_mut()
            .chain(t_range_partitions.iter_mut())
        {
            if parts.is_empty() {
                parts.push(num_partitions as PartitionId);
                num_partitions += 1;
            }
        }

        let report = CsioReport {
            matrix_rows: row_groups.len(),
            matrix_cols: col_groups.len(),
            candidate_cells: matrix.candidate_count(),
            rectangles: rects.len(),
            optimization_seconds: start.elapsed().as_secs_f64(),
        };

        CsioPartitioner {
            lin,
            s_bounds,
            t_bounds,
            s_range_partitions,
            t_range_partitions,
            num_partitions,
            report,
        }
    }

    /// The optimization report.
    pub fn report(&self) -> &CsioReport {
        &self.report
    }
}

impl Partitioner for CsioPartitioner {
    fn num_partitions(&self) -> usize {
        self.num_partitions.max(1)
    }

    fn assign_s(&self, key: &[f64], _tuple_id: u64, out: &mut Vec<PartitionId>) {
        let r = range_of(&self.s_bounds, self.lin.key(key));
        out.extend_from_slice(&self.s_range_partitions[r]);
    }

    fn assign_t(&self, key: &[f64], _tuple_id: u64, out: &mut Vec<PartitionId>) {
        let c = range_of(&self.t_bounds, self.lin.key(key));
        out.extend_from_slice(&self.t_range_partitions[c]);
    }

    // Block routing: one linearize-lookup-emit loop per block. The range's partition
    // list is a precomputed slice, so a block needs no per-tuple buffer or dispatch.
    fn assign_s_block(&self, rel: &Relation, rows: Range<usize>, sink: &mut AssignmentSink) {
        sink.reserve(rows.len());
        for i in rows {
            let r = range_of(&self.s_bounds, self.lin.key(&rel.key(i)));
            for &p in &self.s_range_partitions[r] {
                sink.push(p, i as u32);
            }
        }
    }

    fn assign_t_block(&self, rel: &Relation, rows: Range<usize>, sink: &mut AssignmentSink) {
        sink.reserve(rows.len());
        for i in rows {
            let c = range_of(&self.t_bounds, self.lin.key(&rel.key(i)));
            for &p in &self.t_range_partitions[c] {
                sink.push(p, i as u32);
            }
        }
    }

    fn scatter_policy(&self) -> ScatterPolicy {
        // Quantile-range lookup plus precomputed partition lists: cheap to re-run.
        ScatterPolicy::Reroute
    }

    fn name(&self) -> &str {
        "CSIO"
    }
}

// --------------------------------------------------------------------------------------
// Linearization
// --------------------------------------------------------------------------------------

/// Maps d-dimensional keys to a 128-bit linear key via per-dimension equi-depth bucket
/// boundaries.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Linearizer {
    dims: usize,
    order: LinearizationOrder,
    /// Per-dimension bucket boundaries (ascending). A value's bucket is the number of
    /// boundaries that are `<=` the value, so there are `boundaries.len() + 1` buckets.
    boundaries: Vec<Vec<f64>>,
}

impl Linearizer {
    /// Derive equi-depth boundaries from a sample of points. In dimension 0, boundaries
    /// closer than the band width are merged so that stripes are at least one band width
    /// tall (Section 5.2).
    fn fit<'a>(
        dims: usize,
        order: LinearizationOrder,
        buckets_per_dim: usize,
        band: &BandCondition,
        sample: impl Iterator<Item = &'a [f64]>,
    ) -> Linearizer {
        let buckets_per_dim = buckets_per_dim.clamp(2, u16::MAX as usize + 1);
        let points: Vec<&[f64]> = sample.collect();
        let mut boundaries = Vec::with_capacity(dims);
        for d in 0..dims {
            let mut values: Vec<f64> = points.iter().map(|p| p[d]).collect();
            values.sort_unstable_by(f64::total_cmp);
            let mut bounds: Vec<f64> = Vec::new();
            if !values.is_empty() {
                for q in 1..buckets_per_dim {
                    let idx = q * values.len() / buckets_per_dim;
                    bounds.push(values[idx.min(values.len() - 1)]);
                }
            }
            bounds.dedup();
            if d == 0 {
                let eps = band.eps(0);
                if eps > 0.0 {
                    let mut merged: Vec<f64> = Vec::with_capacity(bounds.len());
                    for b in bounds {
                        if merged.last().map(|&l| b - l >= eps).unwrap_or(true) {
                            merged.push(b);
                        }
                    }
                    bounds = merged;
                }
            }
            boundaries.push(bounds);
        }
        Linearizer {
            dims,
            order,
            boundaries,
        }
    }

    fn bucket(&self, d: usize, v: f64) -> u64 {
        (self.boundaries[d].partition_point(|&b| b <= v) as u64).min(u16::MAX as u64)
    }

    fn key(&self, point: &[f64]) -> u128 {
        match self.order {
            LinearizationOrder::RowMajor => {
                let mut key: u128 = 0;
                for (d, &p) in point.iter().enumerate().take(self.dims) {
                    key = (key << 16) | self.bucket(d, p) as u128;
                }
                key
            }
            LinearizationOrder::Block => {
                // Bit-interleaved (Morton) key over 16-bit buckets.
                let buckets: Vec<u64> = (0..self.dims).map(|d| self.bucket(d, point[d])).collect();
                let mut key: u128 = 0;
                for bit in (0..16).rev() {
                    for &b in &buckets {
                        key = (key << 1) | (((b >> bit) & 1) as u128);
                    }
                }
                key
            }
        }
    }
}

/// Quantile boundaries (exclusive upper bounds; last is `u128::MAX`) over the linear
/// keys of a sample.
fn quantile_bounds<'a>(
    lin: &Linearizer,
    sample: impl Iterator<Item = &'a [f64]>,
    quantiles: usize,
) -> Vec<u128> {
    let mut keys: Vec<u128> = sample.map(|p| lin.key(p)).collect();
    keys.sort_unstable();
    let mut bounds = Vec::with_capacity(quantiles);
    if !keys.is_empty() {
        for q in 1..quantiles {
            let idx = q * keys.len() / quantiles;
            bounds.push(keys[idx.min(keys.len() - 1)]);
        }
    }
    bounds.push(u128::MAX);
    bounds.dedup();
    if *bounds.last().unwrap() != u128::MAX {
        bounds.push(u128::MAX);
    }
    bounds
}

/// Index of the range containing `key` (ranges are `[prev bound, bound)`).
fn range_of(bounds: &[u128], key: u128) -> usize {
    bounds.partition_point(|&b| b <= key).min(bounds.len() - 1)
}

// --------------------------------------------------------------------------------------
// Per-range statistics and the candidate matrix
// --------------------------------------------------------------------------------------

/// Tuple counts and attribute bounds of each quantile range, gathered from the full
/// input.
#[derive(Debug, Clone)]
struct RangeStats {
    dims: usize,
    count: Vec<u64>,
    min: Vec<f64>,
    max: Vec<f64>,
}

impl RangeStats {
    fn new(ranges: usize, dims: usize) -> Self {
        RangeStats {
            dims,
            count: vec![0; ranges],
            min: vec![f64::INFINITY; ranges * dims],
            max: vec![f64::NEG_INFINITY; ranges * dims],
        }
    }

    fn add(&mut self, range: usize, key: &[f64]) {
        self.count[range] += 1;
        for (d, &k) in key.iter().enumerate().take(self.dims) {
            let idx = range * self.dims + d;
            self.min[idx] = self.min[idx].min(k);
            self.max[idx] = self.max[idx].max(k);
        }
    }

    fn bounds(&self, range: usize, d: usize) -> (f64, f64) {
        let idx = range * self.dims + d;
        (self.min[idx], self.max[idx])
    }

    fn is_empty(&self, range: usize) -> bool {
        self.count[range] == 0
    }
}

/// The coarsened candidate matrix with per-cell loads.
#[derive(Debug, Clone)]
struct CandidateMatrix {
    rows: usize,
    cols: usize,
    candidate: Vec<bool>,
    /// Input tuples per coarse row (S side).
    row_input: Vec<f64>,
    /// Input tuples per coarse column (T side).
    col_input: Vec<f64>,
    /// Estimated output per coarse cell.
    output: Vec<f64>,
    /// Load weights (β₂, β₃).
    beta_input: f64,
    beta_output: f64,
}

impl CandidateMatrix {
    #[allow(clippy::too_many_arguments)]
    fn build(
        band: &BandCondition,
        s_stats: &RangeStats,
        t_stats: &RangeStats,
        fine_cell_output: &[f64],
        fine_cols: usize,
        row_groups: &[std::ops::Range<usize>],
        col_groups: &[std::ops::Range<usize>],
    ) -> CandidateMatrix {
        let rows = row_groups.len();
        let cols = col_groups.len();
        let dims = band.dims();

        // Coarse per-group attribute bounds and counts.
        let group_bounds = |stats: &RangeStats, groups: &[std::ops::Range<usize>]| {
            let mut min = vec![f64::INFINITY; groups.len() * dims];
            let mut max = vec![f64::NEG_INFINITY; groups.len() * dims];
            let mut count = vec![0.0f64; groups.len()];
            for (g, range) in groups.iter().enumerate() {
                for r in range.clone() {
                    if stats.is_empty(r) {
                        continue;
                    }
                    count[g] += stats.count[r] as f64;
                    for d in 0..dims {
                        let (lo, hi) = stats.bounds(r, d);
                        min[g * dims + d] = min[g * dims + d].min(lo);
                        max[g * dims + d] = max[g * dims + d].max(hi);
                    }
                }
            }
            (min, max, count)
        };
        let (s_min, s_max, row_input) = group_bounds(s_stats, row_groups);
        let (t_min, t_max, col_input) = group_bounds(t_stats, col_groups);

        let mut candidate = vec![false; rows * cols];
        for i in 0..rows {
            if row_input[i] == 0.0 {
                continue;
            }
            for j in 0..cols {
                if col_input[j] == 0.0 {
                    continue;
                }
                let mut ok = true;
                for d in 0..dims {
                    let (s_lo, s_hi) = (s_min[i * dims + d], s_max[i * dims + d]);
                    let (t_lo, t_hi) = (t_min[j * dims + d], t_max[j * dims + d]);
                    // Some s ∈ [s_lo, s_hi] can match some t ∈ [t_lo, t_hi] iff the
                    // intervals [s_lo, s_hi] and [t_lo − ε_lo, t_hi + ε_hi] overlap.
                    if s_hi < t_lo - band.eps_low(d) || s_lo > t_hi + band.eps_high(d) {
                        ok = false;
                        break;
                    }
                }
                candidate[i * cols + j] = ok;
            }
        }

        // Aggregate fine-grained output estimates into coarse cells.
        let mut output = vec![0.0f64; rows * cols];
        for (gi, rg) in row_groups.iter().enumerate() {
            for (gj, cg) in col_groups.iter().enumerate() {
                let mut sum = 0.0;
                for r in rg.clone() {
                    for c in cg.clone() {
                        sum += fine_cell_output[r * fine_cols + c];
                    }
                }
                output[gi * cols + gj] = sum;
            }
        }

        CandidateMatrix {
            rows,
            cols,
            candidate,
            row_input,
            col_input,
            output,
            beta_input: 4.0,
            beta_output: 1.0,
        }
    }

    fn candidate_count(&self) -> usize {
        self.candidate.iter().filter(|&&c| c).count()
    }

    fn total_load(&self) -> f64 {
        self.beta_input * (self.row_input.iter().sum::<f64>() + self.col_input.iter().sum::<f64>())
            + self.beta_output * self.output.iter().sum::<f64>()
    }

    /// Cover all candidate cells with at most `workers` rectangles minimizing the max
    /// rectangle load, via binary search on the load bound.
    fn cover(&self, workers: usize) -> Vec<CoverRect> {
        if self.candidate_count() == 0 {
            return Vec::new();
        }
        let mut lo = 0.0f64;
        let mut hi = self.total_load().max(1.0);
        let mut best: Option<Vec<CoverRect>> = None;
        for _ in 0..32 {
            let mid = 0.5 * (lo + hi);
            match self.greedy_cover(mid, workers) {
                Some(rects) => {
                    best = Some(rects);
                    hi = mid;
                }
                None => {
                    lo = mid;
                }
            }
        }
        best.unwrap_or_else(|| {
            self.greedy_cover(f64::INFINITY, workers)
                .expect("an unbounded load always fits in one rectangle per row block")
        })
    }

    /// Greedy M-Bucket-I style cover under a load bound: process rows top-down, choose
    /// the row-block height maximizing rows-per-rectangle, split each block's candidate
    /// column span into rectangles that respect the bound. Returns `None` when more than
    /// `workers` rectangles would be needed.
    fn greedy_cover(&self, max_load: f64, workers: usize) -> Option<Vec<CoverRect>> {
        let mut rects: Vec<CoverRect> = Vec::new();
        let mut row = 0usize;
        while row < self.rows {
            // Try block heights 1..=remaining and keep the one with the best score.
            let mut best_block: Option<(usize, Vec<CoverRect>)> = None;
            let mut best_score = 0.0f64;
            let mut height = 1usize;
            while row + height <= self.rows {
                let block_rects = self.cover_row_block(row, row + height - 1, max_load);
                match block_rects {
                    Some(rects_for_block) => {
                        let score = if rects_for_block.is_empty() {
                            // A block with no candidates costs nothing; prefer extending.
                            f64::INFINITY
                        } else {
                            height as f64 / rects_for_block.len() as f64
                        };
                        if score >= best_score {
                            best_score = score;
                            best_block = Some((height, rects_for_block));
                        }
                        height += 1;
                    }
                    None => break,
                }
            }
            let (height, mut block_rects) = best_block?;
            rects.append(&mut block_rects);
            if rects.len() > workers {
                return None;
            }
            row += height;
        }
        Some(rects)
    }

    /// Cover the candidate columns of rows `[row_lo, row_hi]` with column-contiguous
    /// rectangles under the load bound. Returns `None` if even a single column exceeds
    /// the bound.
    fn cover_row_block(
        &self,
        row_lo: usize,
        row_hi: usize,
        max_load: f64,
    ) -> Option<Vec<CoverRect>> {
        let block_s_input: f64 = (row_lo..=row_hi).map(|r| self.row_input[r]).sum();
        let mut rects = Vec::new();
        let mut current: Option<(usize, f64, f64)> = None; // (start col, t input, output)
        for col in 0..self.cols {
            let is_candidate = (row_lo..=row_hi).any(|r| self.candidate[r * self.cols + col]);
            if !is_candidate {
                continue;
            }
            let col_output: f64 = (row_lo..=row_hi)
                .map(|r| self.output[r * self.cols + col])
                .sum();
            let col_input = self.col_input[col];
            let single_load =
                self.beta_input * (block_s_input + col_input) + self.beta_output * col_output;
            if single_load > max_load {
                return None;
            }
            current = match current {
                None => Some((col, col_input, col_output)),
                Some((start, t_in, out)) => {
                    let new_load = self.beta_input * (block_s_input + t_in + col_input)
                        + self.beta_output * (out + col_output);
                    if new_load > max_load {
                        rects.push(CoverRect {
                            row_lo: row_lo as u32,
                            row_hi: row_hi as u32,
                            col_lo: start as u32,
                            col_hi: (col - 1).max(start) as u32,
                        });
                        Some((col, col_input, col_output))
                    } else {
                        Some((start, t_in + col_input, out + col_output))
                    }
                }
            };
            // Close the rectangle at the last column.
            if col == self.cols - 1 {
                if let Some((start, _, _)) = current {
                    rects.push(CoverRect {
                        row_lo: row_lo as u32,
                        row_hi: row_hi as u32,
                        col_lo: start as u32,
                        col_hi: col as u32,
                    });
                    current = None;
                }
            }
        }
        if let Some((start, _, _)) = current {
            // Candidates ended before the last column.
            let last_candidate = (0..self.cols)
                .rev()
                .find(|&c| (row_lo..=row_hi).any(|r| self.candidate[r * self.cols + c]))
                .unwrap_or(start);
            rects.push(CoverRect {
                row_lo: row_lo as u32,
                row_hi: row_hi as u32,
                col_lo: start as u32,
                col_hi: last_candidate.max(start) as u32,
            });
        }
        Some(rects)
    }
}

/// Partition `0..n` into at most `max_groups` contiguous groups of (near-)equal size.
fn group_ranges(n: usize, max_groups: usize) -> Vec<std::ops::Range<usize>> {
    let groups = n.min(max_groups).max(1);
    let mut out = Vec::with_capacity(groups);
    let mut start = 0usize;
    for g in 0..groups {
        let end = ((g + 1) * n) / groups;
        out.push(start..end.max(start));
        start = end;
    }
    // Make sure the full range is covered even with rounding.
    if let Some(last) = out.last_mut() {
        last.end = n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_relation(n: usize, dims: usize, lo: f64, hi: f64, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut r = Relation::with_capacity(dims, n);
        let mut key = vec![0.0; dims];
        for _ in 0..n {
            for k in key.iter_mut() {
                *k = rng.gen_range(lo..hi);
            }
            r.push(&key);
        }
        r
    }

    fn small_config() -> CsioConfig {
        CsioConfig {
            quantiles: 32,
            max_matrix_dim: 16,
            order: LinearizationOrder::RowMajor,
            input_sample_size: 512,
            output_sample_size: 256,
            buckets_per_dim: 128,
        }
    }

    fn exactly_once(p: &CsioPartitioner, s: &Relation, t: &Relation, band: &BandCondition) {
        let mut s_parts = Vec::new();
        let mut t_parts = Vec::new();
        for (si, sk) in s.iter().enumerate() {
            s_parts.clear();
            p.assign_s(&sk, si as u64, &mut s_parts);
            assert!(!s_parts.is_empty(), "S#{si} unassigned");
            for (ti, tk) in t.iter().enumerate() {
                if !band.matches(&sk, &tk) {
                    continue;
                }
                t_parts.clear();
                p.assign_t(&tk, ti as u64, &mut t_parts);
                assert!(!t_parts.is_empty(), "T#{ti} unassigned");
                let common = s_parts.iter().filter(|x| t_parts.contains(x)).count();
                assert_eq!(common, 1, "pair (S#{si}, T#{ti}) met {common} times");
            }
        }
    }

    #[test]
    fn exactly_once_1d() {
        let s = random_relation(400, 1, 0.0, 100.0, 1);
        let t = random_relation(400, 1, 0.0, 100.0, 2);
        let band = BandCondition::symmetric(&[1.0]);
        let mut rng = StdRng::seed_from_u64(3);
        let p = CsioPartitioner::build(&s, &t, &band, 8, &small_config(), &mut rng);
        assert!(p.report().rectangles <= 8);
        assert!(p.report().rectangles > 0);
        exactly_once(&p, &s, &t, &band);
    }

    #[test]
    fn exactly_once_2d_both_orders() {
        let s = random_relation(250, 2, 0.0, 30.0, 4);
        let t = random_relation(250, 2, 0.0, 30.0, 5);
        let band = BandCondition::symmetric(&[1.0, 1.0]);
        for order in [LinearizationOrder::RowMajor, LinearizationOrder::Block] {
            let cfg = CsioConfig {
                order,
                ..small_config()
            };
            let mut rng = StdRng::seed_from_u64(6);
            let p = CsioPartitioner::build(&s, &t, &band, 6, &cfg, &mut rng);
            exactly_once(&p, &s, &t, &band);
        }
    }

    #[test]
    fn rectangles_respect_worker_budget() {
        let s = random_relation(2000, 1, 0.0, 1000.0, 7);
        let t = random_relation(2000, 1, 0.0, 1000.0, 8);
        let band = BandCondition::symmetric(&[2.0]);
        for workers in [4usize, 16, 30] {
            let mut rng = StdRng::seed_from_u64(9);
            let p = CsioPartitioner::build(&s, &t, &band, workers, &small_config(), &mut rng);
            assert!(
                p.report().rectangles <= workers,
                "workers {workers}: got {} rectangles",
                p.report().rectangles
            );
        }
    }

    #[test]
    fn row_major_produces_fewer_candidates_than_block_order_in_2d() {
        // Section 5.2 / Figure 8: with stripe height ≥ ε, row-major ordering yields a
        // thinner candidate diagonal than block ordering.
        let s = random_relation(2000, 2, 0.0, 100.0, 10);
        let t = random_relation(2000, 2, 0.0, 100.0, 11);
        let band = BandCondition::symmetric(&[0.5, 0.5]);
        let cfg = CsioConfig {
            quantiles: 64,
            max_matrix_dim: 64,
            input_sample_size: 2000,
            output_sample_size: 256,
            buckets_per_dim: 256,
            order: LinearizationOrder::RowMajor,
        };
        let mut rng = StdRng::seed_from_u64(12);
        let row_major = CsioPartitioner::build(&s, &t, &band, 16, &cfg, &mut rng);
        let cfg_block = CsioConfig {
            order: LinearizationOrder::Block,
            ..cfg
        };
        let mut rng = StdRng::seed_from_u64(12);
        let block = CsioPartitioner::build(&s, &t, &band, 16, &cfg_block, &mut rng);
        assert!(
            row_major.report().candidate_cells < block.report().candidate_cells,
            "row-major candidates {} should be below block-order candidates {}",
            row_major.report().candidate_cells,
            block.report().candidate_cells
        );
    }

    #[test]
    fn skewed_data_still_covered_correctly() {
        // Pareto-like skew in 1-D.
        let mut rng = StdRng::seed_from_u64(13);
        let mut s = Relation::new(1);
        let mut t = Relation::new(1);
        for _ in 0..500 {
            let u: f64 = rng.gen_range(0.0..1.0f64);
            s.push(&[(1.0 - u).powf(-1.0 / 1.5)]);
            let u: f64 = rng.gen_range(0.0..1.0f64);
            t.push(&[(1.0 - u).powf(-1.0 / 1.5)]);
        }
        let band = BandCondition::symmetric(&[0.05]);
        let p = CsioPartitioner::build(&s, &t, &band, 8, &small_config(), &mut rng);
        exactly_once(&p, &s, &t, &band);
    }

    #[test]
    fn group_ranges_covers_everything() {
        for (n, g) in [(10usize, 3usize), (7, 7), (100, 16), (5, 10), (1, 1)] {
            let groups = group_ranges(n, g);
            assert!(groups.len() <= g.max(1));
            let covered: usize = groups.iter().map(|r| r.len()).sum();
            assert_eq!(covered, n, "n={n} g={g} groups={groups:?}");
            assert_eq!(groups.first().unwrap().start, 0);
            assert_eq!(groups.last().unwrap().end, n);
        }
    }

    #[test]
    fn range_of_is_total() {
        let bounds = vec![10u128, 20, u128::MAX];
        assert_eq!(range_of(&bounds, 0), 0);
        assert_eq!(range_of(&bounds, 9), 0);
        assert_eq!(range_of(&bounds, 10), 1);
        assert_eq!(range_of(&bounds, 19), 1);
        assert_eq!(range_of(&bounds, 20), 2);
        assert_eq!(range_of(&bounds, u128::MAX - 1), 2);
        assert_eq!(range_of(&bounds, u128::MAX), 2);
    }

    #[test]
    fn report_reflects_configuration() {
        let s = random_relation(300, 1, 0.0, 10.0, 14);
        let t = random_relation(300, 1, 0.0, 10.0, 15);
        let band = BandCondition::symmetric(&[0.2]);
        let mut rng = StdRng::seed_from_u64(16);
        let p = CsioPartitioner::build(&s, &t, &band, 4, &small_config(), &mut rng);
        assert!(p.report().matrix_rows <= 16);
        assert!(p.report().matrix_cols <= 16);
        assert!(p.report().optimization_seconds >= 0.0);
        assert_eq!(p.name(), "CSIO");
    }
}
