//! The 1-Bucket partitioner (Okcan & Riedewald, "Processing Theta-Joins Using
//! MapReduce").
//!
//! 1-Bucket ignores the join condition entirely: it covers the whole `S × T` join matrix
//! with a grid of `r` rows and `c` columns (one cell per worker), assigns every S-tuple
//! to a random row — which means the tuple is sent to all `c` cells of that row — and
//! every T-tuple to a random column. Randomization yields near-perfect load balance, but
//! the input is duplicated roughly `√w` times; and because the matrix is independent of
//! the band condition, the duplication does not shrink for selective joins
//! (this is exactly what Tables 2–4 of the paper show).

use recpart::small::stable_hash;
use recpart::{AssignmentSink, PartitionId, Partitioner, Relation, ScatterPolicy};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// The 1-Bucket random matrix-cover partitioner.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OneBucket {
    rows: u32,
    cols: u32,
    seed: u64,
}

impl OneBucket {
    /// Choose the matrix grid for `workers` workers and the given input sizes.
    ///
    /// Among all `(r, c)` with `r·c ≤ workers`, the pair minimizing the expected
    /// per-cell input `|S|/r + |T|/c` is selected (ties broken towards using more
    /// cells). This is the standard 1-Bucket region-shape optimization.
    pub fn new(workers: usize, s_len: usize, t_len: usize, seed: u64) -> Self {
        assert!(workers > 0, "need at least one worker");
        let mut best = (1u32, 1u32);
        let mut best_cost = f64::INFINITY;
        for r in 1..=workers {
            let c = workers / r;
            if c == 0 {
                continue;
            }
            let cost = s_len as f64 / r as f64 + t_len as f64 / c as f64;
            let cells = (r * c) as f64;
            // Prefer lower per-cell input; among equals prefer more cells used.
            if cost < best_cost - 1e-9
                || ((cost - best_cost).abs() <= 1e-9 && cells > (best.0 * best.1) as f64)
            {
                best_cost = cost;
                best = (r as u32, c as u32);
            }
        }
        OneBucket {
            rows: best.0,
            cols: best.1,
            seed,
        }
    }

    /// Construct with an explicit grid shape (used by tests and ablations).
    pub fn with_shape(rows: u32, cols: u32, seed: u64) -> Self {
        assert!(rows >= 1 && cols >= 1);
        OneBucket { rows, cols, seed }
    }

    /// Number of matrix rows (S side).
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of matrix columns (T side).
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Expected duplication factor of the total input:
    /// `(c·|S| + r·|T|) / (|S| + |T|)`.
    pub fn expected_duplication(&self, s_len: usize, t_len: usize) -> f64 {
        (self.cols as f64 * s_len as f64 + self.rows as f64 * t_len as f64) / (s_len + t_len) as f64
    }
}

impl Partitioner for OneBucket {
    fn num_partitions(&self) -> usize {
        (self.rows * self.cols) as usize
    }

    fn assign_s(&self, _key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>) {
        let row = (stable_hash(self.seed, tuple_id) % self.rows as u64) as u32;
        let base = row * self.cols;
        for j in 0..self.cols {
            out.push(base + j);
        }
    }

    fn assign_t(&self, _key: &[f64], tuple_id: u64, out: &mut Vec<PartitionId>) {
        let col =
            (stable_hash(self.seed ^ 0xD1B5_4A32_D192_ED03, tuple_id) % self.cols as u64) as u32;
        for i in 0..self.rows {
            out.push(i * self.cols + col);
        }
    }

    // Block routing with closed-form cell arithmetic: the matrix shape is fixed, so a
    // whole block is one tight hash-and-emit loop — no per-tuple dispatch, no
    // intermediate buffer.
    fn assign_s_block(&self, _rel: &Relation, rows: Range<usize>, sink: &mut AssignmentSink) {
        sink.reserve(rows.len() * self.cols as usize);
        for i in rows {
            let row = (stable_hash(self.seed, i as u64) % self.rows as u64) as u32;
            let base = row * self.cols;
            for j in 0..self.cols {
                sink.push(base + j, i as u32);
            }
        }
    }

    fn assign_t_block(&self, _rel: &Relation, rows: Range<usize>, sink: &mut AssignmentSink) {
        sink.reserve(rows.len() * self.rows as usize);
        for i in rows {
            let col = (stable_hash(self.seed ^ 0xD1B5_4A32_D192_ED03, i as u64) % self.cols as u64)
                as u32;
            for r in 0..self.rows {
                sink.push(r * self.cols + col, i as u32);
            }
        }
    }

    fn scatter_policy(&self) -> ScatterPolicy {
        // One hash plus matrix-cell arithmetic per tuple: cheap to re-run.
        ScatterPolicy::Reroute
    }

    fn name(&self) -> &str {
        "1-Bucket"
    }

    /// Closed form: every S-tuple is copied `cols` times, every T-tuple `rows` times.
    fn count_total_input(&self, s: &Relation, t: &Relation) -> u64 {
        s.len() as u64 * self.cols as u64 + t.len() as u64 * self.rows as u64
    }

    fn estimated_partition_loads(&self) -> Option<Vec<f64>> {
        // All cells are statistically identical.
        Some(vec![1.0; self.num_partitions()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_uses_available_workers() {
        // Equal-size inputs on a square worker count → square grid.
        let b = OneBucket::new(16, 1000, 1000, 1);
        assert_eq!((b.rows(), b.cols()), (4, 4));
        assert_eq!(b.num_partitions(), 16);
        // Very lopsided inputs → partition the big side more.
        let b = OneBucket::new(16, 100_000, 100, 1);
        assert!(b.rows() > b.cols());
    }

    #[test]
    fn thirty_workers_duplication_matches_paper_scale() {
        // The paper reports I = 2200M for 400M input on 30 workers → factor 5.5.
        let b = OneBucket::new(30, 200, 200, 2);
        let dup = b.expected_duplication(200, 200);
        assert!(
            (5.0..6.0).contains(&dup),
            "expected ≈5.5× duplication on 30 workers, got {dup}"
        );
    }

    #[test]
    fn every_pair_meets_in_exactly_one_cell() {
        let b = OneBucket::with_shape(3, 5, 7);
        let mut s_parts = Vec::new();
        let mut t_parts = Vec::new();
        for sid in 0..200u64 {
            s_parts.clear();
            b.assign_s(&[0.0], sid, &mut s_parts);
            assert_eq!(s_parts.len(), 5, "S goes to all cells of one row");
            for tid in 0..50u64 {
                t_parts.clear();
                b.assign_t(&[0.0], tid, &mut t_parts);
                assert_eq!(t_parts.len(), 3, "T goes to all cells of one column");
                let common = s_parts.iter().filter(|p| t_parts.contains(p)).count();
                assert_eq!(common, 1);
            }
        }
    }

    #[test]
    fn assignment_is_deterministic_and_seed_dependent() {
        let a = OneBucket::with_shape(4, 4, 1);
        let b = OneBucket::with_shape(4, 4, 2);
        let mut out1 = Vec::new();
        let mut out2 = Vec::new();
        a.assign_s(&[0.0], 123, &mut out1);
        a.assign_s(&[0.0], 123, &mut out2);
        assert_eq!(out1, out2);
        let mut differing = 0;
        for id in 0..100 {
            out1.clear();
            out2.clear();
            a.assign_s(&[0.0], id, &mut out1);
            b.assign_s(&[0.0], id, &mut out2);
            if out1 != out2 {
                differing += 1;
            }
        }
        assert!(differing > 30, "different seeds should shuffle row choices");
    }

    #[test]
    fn rows_are_roughly_balanced() {
        let b = OneBucket::with_shape(4, 1, 3);
        let mut counts = [0usize; 4];
        let mut out = Vec::new();
        for id in 0..4000u64 {
            out.clear();
            b.assign_s(&[0.0], id, &mut out);
            counts[out[0] as usize] += 1;
        }
        for &c in &counts {
            assert!((800..=1200).contains(&c), "row counts {counts:?}");
        }
    }

    #[test]
    fn partition_ids_are_in_range() {
        let b = OneBucket::new(7, 10, 10, 4); // 7 workers → grid uses ≤ 7 cells
        assert!(b.num_partitions() <= 7);
        let mut out = Vec::new();
        for id in 0..100 {
            out.clear();
            b.assign_s(&[0.0], id, &mut out);
            b.assign_t(&[0.0], id, &mut out);
            assert!(out.iter().all(|&p| (p as usize) < b.num_partitions()));
        }
    }
}
