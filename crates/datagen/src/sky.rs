//! Synthetic stand-in for the Palomar Transient Factory (PTF) object catalog.
//!
//! Table 16 of the paper joins 1.198 billion PTF object records on right ascension and
//! declination with band widths of 1 and 3 arc seconds to find repeat observations of
//! the same celestial object. The defining structural features for partitioning are:
//!
//! * a 2-D attribute space `(ra, dec)` with `ra ∈ [0, 360)` degrees and
//!   `dec ∈ [−90, 90]` degrees;
//! * extremely clustered density: most detections lie in repeatedly imaged survey
//!   fields and near the galactic plane;
//! * the two join inputs are (near-)identically distributed — the query is effectively
//!   a self-join — so almost every tuple has at least one very close neighbour.
//!
//! [`SkySurveyGenerator`] reproduces exactly that shape: a set of survey fields with
//! Gaussian-distributed detections, a dense sinusoidal "galactic plane" band, and a thin
//! uniform background. Each generated object is additionally jittered copies of a
//! smaller set of true sources, so that arc-second-scale self-join output exists.

use crate::synthetic::gaussian;
use rand::Rng;
use recpart::Relation;

/// Configuration and state of the synthetic sky-survey generator.
#[derive(Debug, Clone)]
pub struct SkySurveyGenerator {
    /// Survey field centers `(ra, dec)` in degrees.
    fields: Vec<(f64, f64)>,
    /// Field radius (degrees) — PTF fields are ~3.5° wide.
    field_sigma: f64,
    /// Fraction of detections on the galactic-plane band.
    plane_fraction: f64,
    /// Fraction of uniform background detections.
    background_fraction: f64,
    /// Jitter applied to repeat detections of the same source, in degrees
    /// (1 arc second = 1/3600°).
    repeat_jitter: f64,
    /// Average number of detections per true source.
    detections_per_source: usize,
}

impl SkySurveyGenerator {
    /// Create a generator with `num_fields` randomly placed survey fields.
    pub fn new<R: Rng + ?Sized>(num_fields: usize, rng: &mut R) -> Self {
        assert!(num_fields > 0);
        let fields = (0..num_fields)
            .map(|_| (rng.gen_range(0.0..360.0), rng.gen_range(-30.0..60.0)))
            .collect();
        SkySurveyGenerator {
            fields,
            field_sigma: 1.8,
            plane_fraction: 0.3,
            background_fraction: 0.05,
            repeat_jitter: 0.8 / 3600.0,
            detections_per_source: 4,
        }
    }

    /// Generate `n` object detections as `(ra, dec)` tuples.
    ///
    /// Detections are produced in bursts around true sources so that a self-band-join
    /// with arc-second band widths has non-trivial output.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Relation {
        let mut relation = Relation::with_capacity(2, n);
        while relation.len() < n {
            let (ra, dec) = self.sample_source(rng);
            let detections = rng.gen_range(1..=self.detections_per_source * 2 - 1);
            for _ in 0..detections {
                if relation.len() >= n {
                    break;
                }
                let jra = (ra + gaussian(rng) * self.repeat_jitter).rem_euclid(360.0);
                let jdec = (dec + gaussian(rng) * self.repeat_jitter).clamp(-90.0, 90.0);
                relation.push(&[jra, jdec]);
            }
        }
        relation
    }

    fn sample_source<R: Rng + ?Sized>(&self, rng: &mut R) -> (f64, f64) {
        let roll: f64 = rng.gen();
        if roll < self.background_fraction {
            (rng.gen_range(0.0..360.0), rng.gen_range(-90.0..90.0))
        } else if roll < self.background_fraction + self.plane_fraction {
            // Galactic plane approximated by a sinusoid in equatorial coordinates.
            let ra: f64 = rng.gen_range(0.0..360.0);
            let dec_center = 27.0 * (ra.to_radians() - 1.0).sin();
            let dec = (dec_center + gaussian(rng) * 2.0).clamp(-90.0, 90.0);
            (ra, dec)
        } else {
            let (cra, cdec) = self.fields[rng.gen_range(0..self.fields.len())];
            let ra = (cra + gaussian(rng) * self.field_sigma).rem_euclid(360.0);
            let dec = (cdec + gaussian(rng) * self.field_sigma).clamp(-90.0, 90.0);
            (ra, dec)
        }
    }

    /// The survey field centers (exposed for tests).
    pub fn fields(&self) -> &[(f64, f64)] {
        &self.fields
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use recpart::BandCondition;

    #[test]
    fn coordinates_are_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        let gen = SkySurveyGenerator::new(20, &mut rng);
        let r = gen.generate(2000, &mut rng);
        assert_eq!(r.len(), 2000);
        assert_eq!(r.dims(), 2);
        for key in r.iter() {
            assert!(
                (0.0..360.0).contains(&key[0]),
                "ra out of range: {}",
                key[0]
            );
            assert!(
                (-90.0..=90.0).contains(&key[1]),
                "dec out of range: {}",
                key[1]
            );
        }
    }

    #[test]
    fn self_join_with_arcsecond_band_has_output() {
        let mut rng = StdRng::seed_from_u64(2);
        let gen = SkySurveyGenerator::new(10, &mut rng);
        let r = gen.generate(1500, &mut rng);
        // 3 arc seconds, as in Table 16.
        let band = BandCondition::symmetric(&[8.33e-4, 8.33e-4]);
        let mut matches = 0u64;
        for (i, a) in r.iter().enumerate() {
            for (j, b) in r.iter().enumerate() {
                if i != j && band.matches(&a, &b) {
                    matches += 1;
                }
            }
        }
        assert!(
            matches > 100,
            "repeat detections should produce close pairs, got {matches}"
        );
    }

    #[test]
    fn detections_are_spatially_clustered() {
        let mut rng = StdRng::seed_from_u64(3);
        let gen = SkySurveyGenerator::new(15, &mut rng);
        let r = gen.generate(4000, &mut rng);
        // Count tuples within 3 degrees of any field center; uniform data would put
        // roughly (15 · π·3²)/(360·180) ≈ 0.65% there, clustered data far more.
        let near_field = r
            .iter()
            .filter(|k| {
                gen.fields()
                    .iter()
                    .any(|(ra, dec)| (k[0] - ra).abs() < 3.0 && (k[1] - dec).abs() < 3.0)
            })
            .count();
        assert!(
            near_field > 1500,
            "only {near_field}/4000 detections near survey fields"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let make = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let gen = SkySurveyGenerator::new(5, &mut rng);
            gen.generate(200, &mut rng)
        };
        assert_eq!(make(7), make(7));
    }
}
