//! Basic synthetic distributions: uniform, Gaussian clusters, and adversarial
//! corner-packed data.
//!
//! These are used by unit and property tests across the workspace and by the analytical
//! experiments around Lemma 2 and Lemma 3 (grid partitioning behaviour under extreme
//! density concentration).

use rand::Rng;
use recpart::Relation;

/// A relation with `n` tuples whose `dims` attributes are i.i.d. uniform on `[lo, hi)`.
pub fn uniform_relation<R: Rng + ?Sized>(
    n: usize,
    dims: usize,
    lo: f64,
    hi: f64,
    rng: &mut R,
) -> Relation {
    assert!(lo < hi, "need lo < hi");
    let mut relation = Relation::with_capacity(dims, n);
    let mut key = vec![0.0; dims];
    for _ in 0..n {
        for k in key.iter_mut() {
            *k = rng.gen_range(lo..hi);
        }
        relation.push(&key);
    }
    relation
}

/// A mixture of `centers.len()` isotropic Gaussian clusters (standard deviation `sigma`)
/// plus a `background` fraction of uniform noise on the bounding box of the centers
/// (inflated by `3·sigma`).
pub fn clustered_relation<R: Rng + ?Sized>(
    n: usize,
    centers: &[Vec<f64>],
    sigma: f64,
    background: f64,
    rng: &mut R,
) -> Relation {
    assert!(!centers.is_empty(), "need at least one cluster center");
    assert!((0.0..=1.0).contains(&background));
    let dims = centers[0].len();
    assert!(centers.iter().all(|c| c.len() == dims));

    let mut lo = vec![f64::INFINITY; dims];
    let mut hi = vec![f64::NEG_INFINITY; dims];
    for c in centers {
        for d in 0..dims {
            lo[d] = lo[d].min(c[d] - 3.0 * sigma);
            hi[d] = hi[d].max(c[d] + 3.0 * sigma);
        }
    }

    let mut relation = Relation::with_capacity(dims, n);
    let mut key = vec![0.0; dims];
    for _ in 0..n {
        if rng.gen::<f64>() < background {
            for (d, k) in key.iter_mut().enumerate() {
                *k = rng.gen_range(lo[d]..hi[d]);
            }
        } else {
            let c = &centers[rng.gen_range(0..centers.len())];
            for (d, k) in key.iter_mut().enumerate() {
                *k = c[d] + gaussian(rng) * sigma;
            }
        }
        relation.push(&key);
    }
    relation
}

/// The adversarial construction behind the grid-partitioning lower bound discussion
/// (Section 5.1): a `fraction` of all tuples is packed into a tiny box of side `width`
/// around `corner`, the rest is uniform on `[0, domain)` in every dimension.
///
/// Whatever the grid size, some grid cell (or pair of adjacent cells) must receive the
/// entire packed mass — Lemma 2.
pub fn corner_packed_relation<R: Rng + ?Sized>(
    n: usize,
    dims: usize,
    corner: f64,
    width: f64,
    fraction: f64,
    domain: f64,
    rng: &mut R,
) -> Relation {
    assert!((0.0..=1.0).contains(&fraction));
    assert!(width > 0.0 && domain > 0.0);
    let mut relation = Relation::with_capacity(dims, n);
    let mut key = vec![0.0; dims];
    for _ in 0..n {
        if rng.gen::<f64>() < fraction {
            for k in key.iter_mut() {
                *k = corner + rng.gen_range(0.0..width);
            }
        } else {
            for k in key.iter_mut() {
                *k = rng.gen_range(0.0..domain);
            }
        }
        relation.push(&key);
    }
    relation
}

/// One standard-normal draw via the Box–Muller transform (avoids an extra dependency on
/// `rand_distr`).
#[inline]
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = uniform_relation(1000, 3, -5.0, 5.0, &mut rng);
        assert_eq!(r.len(), 1000);
        for key in r.iter() {
            assert!(key.iter().all(|v| (-5.0..5.0).contains(v)));
        }
    }

    #[test]
    fn gaussian_has_roughly_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..50_000).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn clusters_concentrate_mass_near_centers() {
        let mut rng = StdRng::seed_from_u64(3);
        let centers = vec![vec![0.0, 0.0], vec![100.0, 100.0]];
        let r = clustered_relation(2000, &centers, 1.0, 0.0, &mut rng);
        let near_center = r
            .iter()
            .filter(|k| {
                centers.iter().any(|c| {
                    k.iter()
                        .zip(c)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt()
                        < 4.0
                })
            })
            .count();
        assert!(
            near_center > 1900,
            "only {near_center}/2000 tuples near a cluster center"
        );
    }

    #[test]
    fn background_fraction_spreads_points() {
        // Two far-apart clusters with 50% background: the region between the clusters is
        // only reachable by background points, so it must receive a sizable share.
        let mut rng = StdRng::seed_from_u64(4);
        let centers = vec![vec![0.0], vec![100.0]];
        let with_bg = clustered_relation(2000, &centers, 0.1, 0.5, &mut rng);
        let between = with_bg
            .iter()
            .filter(|k| k[0] > 10.0 && k[0] < 90.0)
            .count();
        assert!(
            between > 500,
            "background noise should fill the gap between clusters, got {between}"
        );
        let without_bg = clustered_relation(2000, &centers, 0.1, 0.0, &mut rng);
        let between = without_bg
            .iter()
            .filter(|k| k[0] > 10.0 && k[0] < 90.0)
            .count();
        assert_eq!(between, 0, "no background ⇒ nothing between the clusters");
    }

    #[test]
    fn corner_packed_concentrates_requested_fraction() {
        let mut rng = StdRng::seed_from_u64(5);
        let r = corner_packed_relation(4000, 2, 50.0, 0.01, 0.5, 100.0, &mut rng);
        let packed = r
            .iter()
            .filter(|k| k.iter().all(|&v| (50.0..50.01).contains(&v)))
            .count();
        let frac = packed as f64 / 4000.0;
        assert!(
            (0.42..0.58).contains(&frac),
            "packed fraction {frac} too far from 0.5"
        );
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn uniform_invalid_range_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = uniform_relation(10, 1, 1.0, 1.0, &mut rng);
    }
}
