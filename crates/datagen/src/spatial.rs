//! Synthetic stand-ins for the paper's real spatio-temporal datasets.
//!
//! The paper joins `ebird` (508 M bird sightings: time, latitude, longitude, …) with
//! `cloud` (382 M synoptic weather reports: time, latitude, longitude, …) on the three
//! attributes time/latitude/longitude with small band widths (Example 1, Tables 2c, 4b).
//! Neither dataset ships with this repository, so we generate data with the same
//! *partitioning-relevant* structure:
//!
//! * observations cluster around a set of geographic hot spots (cities, observatories,
//!   shipping lanes) — strong 2-D skew in latitude/longitude;
//! * reports accumulate over years with seasonal intensity — 1-D skew in time;
//! * the two relations share most hot spots (weather is reported where birds are
//!   watched), giving the correlated densities that make the join output non-trivial.
//!
//! The generators are deterministic given an RNG and a [`SpatialConfig`].

use crate::synthetic::gaussian;
use rand::Rng;
use recpart::Relation;

/// Common geometry of the synthetic observation region.
#[derive(Debug, Clone)]
pub struct SpatialConfig {
    /// Number of geographic hot spots.
    pub hotspots: usize,
    /// Standard deviation (degrees) of observations around a hot spot.
    pub hotspot_sigma: f64,
    /// Fraction of tuples drawn uniformly over the whole region instead of a hot spot.
    pub background: f64,
    /// Time range in days (e.g. 15 years ≈ 5475).
    pub time_span_days: f64,
    /// Latitude range covered (degrees).
    pub latitude_range: (f64, f64),
    /// Longitude range covered (degrees).
    pub longitude_range: (f64, f64),
}

impl Default for SpatialConfig {
    fn default() -> Self {
        SpatialConfig {
            hotspots: 40,
            hotspot_sigma: 0.8,
            background: 0.1,
            time_span_days: 5_475.0,
            latitude_range: (24.0, 50.0),
            longitude_range: (-125.0, -66.0),
        }
    }
}

impl SpatialConfig {
    /// Draw the shared hot-spot centers `(latitude, longitude)`.
    fn draw_hotspots<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<(f64, f64)> {
        (0..self.hotspots)
            .map(|_| {
                (
                    rng.gen_range(self.latitude_range.0..self.latitude_range.1),
                    rng.gen_range(self.longitude_range.0..self.longitude_range.1),
                )
            })
            .collect()
    }
}

/// Generates `ebird`-like observations: tuples `(time, latitude, longitude)` clustered
/// around birding hot spots with seasonal (spring/fall biased) time stamps.
#[derive(Debug, Clone)]
pub struct BirdObservationGenerator {
    config: SpatialConfig,
    hotspots: Vec<(f64, f64)>,
}

/// Generates `cloud`-like weather reports: the same hot spots as the paired
/// [`BirdObservationGenerator`] plus a station grid, with uniformly spread time stamps.
#[derive(Debug, Clone)]
pub struct WeatherReportGenerator {
    config: SpatialConfig,
    hotspots: Vec<(f64, f64)>,
}

impl BirdObservationGenerator {
    /// Create a generator with freshly drawn hot spots.
    pub fn new<R: Rng + ?Sized>(config: SpatialConfig, rng: &mut R) -> Self {
        let hotspots = config.draw_hotspots(rng);
        BirdObservationGenerator { config, hotspots }
    }

    /// Create the paired weather generator sharing (most of) this generator's hot spots,
    /// which is what produces the correlated density the real datasets exhibit.
    pub fn paired_weather_generator<R: Rng + ?Sized>(&self, rng: &mut R) -> WeatherReportGenerator {
        // Weather stations cover the birding hot spots plus a few locations of their own.
        let mut hotspots = self.hotspots.clone();
        let extra = (self.config.hotspots / 4).max(1);
        for _ in 0..extra {
            hotspots.push((
                rng.gen_range(self.config.latitude_range.0..self.config.latitude_range.1),
                rng.gen_range(self.config.longitude_range.0..self.config.longitude_range.1),
            ));
        }
        WeatherReportGenerator {
            config: self.config.clone(),
            hotspots,
        }
    }

    /// Generate `n` observations as `(time, latitude, longitude)` tuples.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Relation {
        let cfg = &self.config;
        let mut relation = Relation::with_capacity(3, n);
        for _ in 0..n {
            let (lat, lon) = sample_location(cfg, &self.hotspots, rng);
            // Seasonal time: pick a year uniformly, then a day biased towards spring and
            // fall migration (mixture of two in-year Gaussians).
            let years = (cfg.time_span_days / 365.0).max(1.0);
            let year = rng.gen_range(0.0..years).floor();
            let season_center = if rng.gen_bool(0.5) { 120.0 } else { 270.0 };
            let day_in_year = (season_center + gaussian(rng) * 25.0).rem_euclid(365.0);
            let time = (year * 365.0 + day_in_year).min(cfg.time_span_days);
            relation.push(&[time, lat, lon]);
        }
        relation
    }

    /// The hot-spot centers (exposed for tests).
    pub fn hotspots(&self) -> &[(f64, f64)] {
        &self.hotspots
    }
}

impl WeatherReportGenerator {
    /// Generate `n` weather reports as `(time, latitude, longitude)` tuples.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Relation {
        let cfg = &self.config;
        let mut relation = Relation::with_capacity(3, n);
        for _ in 0..n {
            let (lat, lon) = sample_location(cfg, &self.hotspots, rng);
            // Weather reports arrive steadily over the whole span.
            let time = rng.gen_range(0.0..cfg.time_span_days);
            relation.push(&[time, lat, lon]);
        }
        relation
    }

    /// The hot-spot centers (exposed for tests).
    pub fn hotspots(&self) -> &[(f64, f64)] {
        &self.hotspots
    }
}

fn sample_location<R: Rng + ?Sized>(
    cfg: &SpatialConfig,
    hotspots: &[(f64, f64)],
    rng: &mut R,
) -> (f64, f64) {
    if rng.gen::<f64>() < cfg.background {
        (
            rng.gen_range(cfg.latitude_range.0..cfg.latitude_range.1),
            rng.gen_range(cfg.longitude_range.0..cfg.longitude_range.1),
        )
    } else {
        let (clat, clon) = hotspots[rng.gen_range(0..hotspots.len())];
        let lat = (clat + gaussian(rng) * cfg.hotspot_sigma)
            .clamp(cfg.latitude_range.0, cfg.latitude_range.1);
        let lon = (clon + gaussian(rng) * cfg.hotspot_sigma)
            .clamp(cfg.longitude_range.0, cfg.longitude_range.1);
        (lat, lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use recpart::BandCondition;

    fn generators(seed: u64) -> (BirdObservationGenerator, WeatherReportGenerator) {
        let mut rng = StdRng::seed_from_u64(seed);
        let birds = BirdObservationGenerator::new(SpatialConfig::default(), &mut rng);
        let weather = birds.paired_weather_generator(&mut rng);
        (birds, weather)
    }

    #[test]
    fn tuples_are_three_dimensional_and_in_range() {
        let (birds, weather) = generators(1);
        let mut rng = StdRng::seed_from_u64(2);
        let b = birds.generate(500, &mut rng);
        let w = weather.generate(500, &mut rng);
        let cfg = SpatialConfig::default();
        for r in [&b, &w] {
            assert_eq!(r.dims(), 3);
            for key in r.iter() {
                assert!((0.0..=cfg.time_span_days).contains(&key[0]));
                assert!((cfg.latitude_range.0..=cfg.latitude_range.1).contains(&key[1]));
                assert!((cfg.longitude_range.0..=cfg.longitude_range.1).contains(&key[2]));
            }
        }
    }

    #[test]
    fn paired_generators_share_hotspots() {
        let (birds, weather) = generators(3);
        for h in birds.hotspots() {
            assert!(weather.hotspots().contains(h));
        }
        assert!(weather.hotspots().len() > birds.hotspots().len());
    }

    #[test]
    fn data_is_spatially_skewed() {
        // A small lat/lon box around the densest hot spot should hold far more than its
        // uniform share of the data.
        let (birds, _) = generators(4);
        let mut rng = StdRng::seed_from_u64(5);
        let b = birds.generate(4000, &mut rng);
        let cfg = SpatialConfig::default();
        let area_share = (2.0 * 2.0)
            / ((cfg.latitude_range.1 - cfg.latitude_range.0)
                * (cfg.longitude_range.1 - cfg.longitude_range.0));
        let best_count = birds
            .hotspots()
            .iter()
            .map(|(clat, clon)| {
                b.iter()
                    .filter(|k| (k[1] - clat).abs() < 1.0 && (k[2] - clon).abs() < 1.0)
                    .count()
            })
            .max()
            .unwrap();
        let expected_uniform = area_share * 4000.0;
        assert!(
            best_count as f64 > expected_uniform * 3.0,
            "hot spot holds {best_count} tuples, uniform share would be {expected_uniform:.1}"
        );
    }

    #[test]
    fn band_join_produces_output_with_small_bands() {
        // The correlated hot spots must make a (1, 1, 1)-band join non-empty even for
        // moderately sized inputs — this is what makes the ebird/cloud experiments
        // meaningful.
        let (birds, weather) = generators(6);
        let mut rng = StdRng::seed_from_u64(7);
        let b = birds.generate(800, &mut rng);
        let w = weather.generate(800, &mut rng);
        let band = BandCondition::symmetric(&[10.0, 1.0, 1.0]);
        let mut matches = 0u64;
        for bk in b.iter() {
            for wk in w.iter() {
                if band.matches(&bk, &wk) {
                    matches += 1;
                }
            }
        }
        assert!(matches > 0, "expected at least one joining pair");
    }

    #[test]
    fn generation_is_deterministic() {
        let (birds, _) = generators(8);
        let a = birds.generate(100, &mut StdRng::seed_from_u64(9));
        let b = birds.generate(100, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
