//! Pareto-distributed join attributes (`pareto-z` and `rv-pareto-z`).
//!
//! The paper: *"we use a Pareto distribution where join-attribute value x is drawn from
//! domain [1.0, ∞) of real numbers and follows PDF z/x^(z+1) (greater z creates more
//! skew) … pareto-z denotes a pair of tables, each with 200 million tuples, with
//! Pareto-distributed join attributes for skew z. High-frequency values in S are also
//! high-frequency values in T. rv-pareto-z is the same as pareto-z, but high-frequency
//! values in S have low frequency in T, and vice versa. Specifically, T follows a Pareto
//! distribution from 10⁶ down to −∞."*

use rand::Rng;
use recpart::Relation;

/// The reflection point used by the reverse-Pareto (`rv-pareto-z`) family: T-values are
/// generated as `10⁶ − y` with `y` Pareto-distributed.
pub const REVERSE_PARETO_OFFSET: f64 = 1.0e6;

/// Draw one value from a Pareto distribution with shape `z` on `[1, ∞)` via inverse
/// transform sampling: `x = (1 − u)^(−1/z)`.
#[inline]
pub fn pareto_value<R: Rng + ?Sized>(z: f64, rng: &mut R) -> f64 {
    debug_assert!(z > 0.0, "Pareto shape must be positive");
    let u: f64 = rng.gen_range(0.0..1.0);
    (1.0 - u).powf(-1.0 / z)
}

/// Generator for relations whose join attributes are i.i.d. Pareto(z) values.
#[derive(Debug, Clone, Copy)]
pub struct ParetoGenerator {
    /// Shape parameter `z` (the paper explores 0.5 … 2.0; `z = log₄5 ≈ 1.16` is the
    /// 80-20 rule).
    pub shape: f64,
    /// Number of join attributes per tuple.
    pub dims: usize,
    /// When `true`, values are reflected as `10⁶ − x` (the `rv-pareto` family).
    pub reversed: bool,
}

impl ParetoGenerator {
    /// A standard (non-reversed) generator.
    pub fn new(shape: f64, dims: usize) -> Self {
        assert!(shape > 0.0, "Pareto shape must be positive");
        assert!(dims > 0, "need at least one dimension");
        ParetoGenerator {
            shape,
            dims,
            reversed: false,
        }
    }

    /// A reversed generator (high-frequency values near `10⁶` instead of near 1).
    pub fn reversed(shape: f64, dims: usize) -> Self {
        ParetoGenerator {
            reversed: true,
            ..Self::new(shape, dims)
        }
    }

    /// Generate a relation with `n` tuples.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Relation {
        let mut relation = Relation::with_capacity(self.dims, n);
        let mut key = vec![0.0; self.dims];
        for _ in 0..n {
            for k in key.iter_mut() {
                let v = pareto_value(self.shape, rng);
                *k = if self.reversed {
                    REVERSE_PARETO_OFFSET - v
                } else {
                    v
                };
            }
            relation.push(&key);
        }
        relation
    }
}

/// Convenience: generate one `pareto-z` relation (`n` tuples, `dims` attributes).
pub fn pareto_relation<R: Rng + ?Sized>(n: usize, dims: usize, z: f64, rng: &mut R) -> Relation {
    ParetoGenerator::new(z, dims).generate(n, rng)
}

/// Convenience: generate one reversed (`rv-pareto-z`) relation.
pub fn reverse_pareto_relation<R: Rng + ?Sized>(
    n: usize,
    dims: usize,
    z: f64,
    rng: &mut R,
) -> Relation {
    ParetoGenerator::reversed(z, dims).generate(n, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pareto_values_are_at_least_one() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = pareto_value(1.5, &mut rng);
            assert!(v >= 1.0, "Pareto([1,∞)) value below 1: {v}");
            assert!(v.is_finite());
        }
    }

    #[test]
    fn higher_shape_means_less_skew_in_the_tail() {
        // With larger z the distribution concentrates near 1, so the empirical 99th
        // percentile should be smaller.
        let mut rng = StdRng::seed_from_u64(2);
        let p99 = |z: f64, rng: &mut StdRng| {
            let mut v: Vec<f64> = (0..20_000).map(|_| pareto_value(z, rng)).collect();
            v.sort_by(f64::total_cmp);
            v[(v.len() as f64 * 0.99) as usize]
        };
        let tail_heavy = p99(0.5, &mut rng);
        let tail_light = p99(2.0, &mut rng);
        assert!(
            tail_heavy > tail_light * 5.0,
            "z=0.5 tail ({tail_heavy}) should dwarf z=2.0 tail ({tail_light})"
        );
    }

    #[test]
    fn median_matches_theory() {
        // Median of Pareto(z) on [1, ∞) is 2^(1/z).
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<f64> = (0..40_000).map(|_| pareto_value(1.0, &mut rng)).collect();
        v.sort_by(f64::total_cmp);
        let median = v[v.len() / 2];
        assert!(
            (median - 2.0).abs() < 0.1,
            "empirical median {median} too far from 2.0"
        );
    }

    #[test]
    fn generator_produces_requested_shape() {
        let mut rng = StdRng::seed_from_u64(4);
        let r = ParetoGenerator::new(1.5, 3).generate(500, &mut rng);
        assert_eq!(r.len(), 500);
        assert_eq!(r.dims(), 3);
        for key in r.iter() {
            assert!(key.iter().all(|&v| v >= 1.0));
        }
    }

    #[test]
    fn reversed_generator_reflects_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let r = reverse_pareto_relation(500, 2, 1.5, &mut rng);
        for key in r.iter() {
            for &v in key.iter() {
                assert!(v <= REVERSE_PARETO_OFFSET - 1.0);
            }
        }
        // Most mass should be close to the offset (the reflected mode).
        let near_offset = r
            .iter()
            .filter(|k| k[0] > REVERSE_PARETO_OFFSET - 10.0)
            .count();
        assert!(
            near_offset > r.len() / 2,
            "reverse Pareto should concentrate near {REVERSE_PARETO_OFFSET}"
        );
    }

    #[test]
    fn forward_and_reverse_are_anti_correlated_in_density() {
        // The dense region of the forward family ([1, 2]) should contain almost no
        // reverse-family values and vice versa.
        let mut rng = StdRng::seed_from_u64(6);
        let fwd = pareto_relation(2000, 1, 1.5, &mut rng);
        let rev = reverse_pareto_relation(2000, 1, 1.5, &mut rng);
        let fwd_low = fwd.iter().filter(|k| k[0] <= 2.0).count();
        let rev_low = rev.iter().filter(|k| k[0] <= 2.0).count();
        assert!(fwd_low > 1000);
        assert!(rev_low < 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = ParetoGenerator::new(1.2, 2);
        let a = gen.generate(100, &mut StdRng::seed_from_u64(7));
        let b = gen.generate(100, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_shape_panics() {
        let _ = ParetoGenerator::new(0.0, 1);
    }
}
