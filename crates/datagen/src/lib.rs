//! # datagen — workloads for distributed band-join experiments
//!
//! This crate generates the synthetic datasets used throughout the evaluation of the
//! RecPart paper, plus synthetic stand-ins for the paper's real datasets (which are not
//! redistributable):
//!
//! * [`pareto`] — the `pareto-z` and `rv-pareto-z` families: heavy-tailed join
//!   attributes drawn from a Pareto distribution with shape `z` (the paper explores
//!   `z ∈ [0.5, 2.0]`), optionally reversed so that the high-density regions of `S` and
//!   `T` are anti-correlated.
//! * [`spatial`] — `ebird`-like bird observations and `cloud`-like weather reports:
//!   clustered latitude/longitude/time data with correlated hot spots.
//! * [`sky`] — `ptf`-like sky-survey objects (right ascension / declination) with a
//!   dense galactic band, for the self-join style queries of Table 16.
//! * [`synthetic`] — uniform, Gaussian-cluster, and adversarial corner-packed data used
//!   by unit tests and the Lemma 2/3 experiments.
//! * [`catalog`] — the experiment catalog mirroring Table 1/Table 10 of the paper, with
//!   a global scale factor so the multi-hundred-million tuple workloads shrink to
//!   laptop-sized inputs while keeping their distributional shape.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod pareto;
pub mod sky;
pub mod spatial;
pub mod synthetic;

pub use catalog::{DatasetSpec, ExperimentConfig, ExperimentId};
pub use pareto::{pareto_relation, reverse_pareto_relation, ParetoGenerator};
pub use sky::SkySurveyGenerator;
pub use spatial::{BirdObservationGenerator, WeatherReportGenerator};
pub use synthetic::{clustered_relation, corner_packed_relation, uniform_relation};
