//! The experiment catalog: every dataset / band-width combination of Table 1 (Table 10
//! in the extended version) of the paper, plus helpers to instantiate them at a reduced
//! scale.
//!
//! ## Scaling rule
//!
//! The paper's inputs have 10⁸–10⁹ tuples. The catalog keeps the paper's *distributions*
//! and *band-width vectors* but generates `scale × paper size` tuples. Because band-join
//! output grows with the product of the input sizes, simply shrinking the inputs while
//! keeping the paper's band widths would collapse the output-to-input ratio (and with it
//! all output-balancing effects) to zero. [`ExperimentConfig::instantiate`] therefore
//! *calibrates* the band width: it scales the paper's band-width vector by a single
//! multiplier, chosen by bisection, so that the estimated output-to-input ratio of the
//! scaled workload matches the paper's ratio for that row. Rows with (near-)zero paper
//! output keep the paper's band widths unchanged. The substitution is documented in
//! `DESIGN.md` and `EXPERIMENTS.md`.

use crate::pareto::ParetoGenerator;
use crate::sky::SkySurveyGenerator;
use crate::spatial::{BirdObservationGenerator, SpatialConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recpart::{BandCondition, OutputSample, Relation, SampleConfig};
use serde::{Deserialize, Serialize};

/// Identifier of an experiment configuration (table row), e.g. `"pareto-1.5/d3/eps2"`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExperimentId(pub String);

impl std::fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Which data family an experiment draws from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DatasetSpec {
    /// `pareto-z`: both relations Pareto(z), correlated hot regions.
    Pareto {
        /// Skew parameter `z`.
        z: f64,
        /// Join dimensionality.
        dims: usize,
    },
    /// `rv-pareto-z`: S is Pareto(z) near 1, T is reflected (`10⁶ − x`), so the dense
    /// regions of the two inputs are anti-correlated.
    ReversePareto {
        /// Skew parameter `z`.
        z: f64,
        /// Join dimensionality.
        dims: usize,
    },
    /// `ebird ⋈ cloud`: 3-D spatio-temporal join of bird observations with weather
    /// reports (synthetic stand-ins, see [`crate::spatial`]).
    EbirdCloud,
    /// `ptf_objects`: 2-D sky-survey self-join (synthetic stand-in, see [`crate::sky`]).
    PtfObjects,
}

impl DatasetSpec {
    /// Join dimensionality of the dataset.
    pub fn dims(&self) -> usize {
        match self {
            DatasetSpec::Pareto { dims, .. } | DatasetSpec::ReversePareto { dims, .. } => *dims,
            DatasetSpec::EbirdCloud => 3,
            DatasetSpec::PtfObjects => 2,
        }
    }

    /// Generate the two input relations with `s_len` and `t_len` tuples.
    pub fn generate(&self, s_len: usize, t_len: usize, seed: u64) -> (Relation, Relation) {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            DatasetSpec::Pareto { z, dims } => {
                let gen = ParetoGenerator::new(*z, *dims);
                (gen.generate(s_len, &mut rng), gen.generate(t_len, &mut rng))
            }
            DatasetSpec::ReversePareto { z, dims } => {
                let fwd = ParetoGenerator::new(*z, *dims);
                let rev = ParetoGenerator::reversed(*z, *dims);
                (fwd.generate(s_len, &mut rng), rev.generate(t_len, &mut rng))
            }
            DatasetSpec::EbirdCloud => {
                let birds = BirdObservationGenerator::new(SpatialConfig::default(), &mut rng);
                let weather = birds.paired_weather_generator(&mut rng);
                (
                    birds.generate(s_len, &mut rng),
                    weather.generate(t_len, &mut rng),
                )
            }
            DatasetSpec::PtfObjects => {
                let gen = SkySurveyGenerator::new(60, &mut rng);
                (gen.generate(s_len, &mut rng), gen.generate(t_len, &mut rng))
            }
        }
    }

    /// How the paper splits the total input between S and T for this dataset
    /// (fraction assigned to S).
    pub fn s_fraction(&self) -> f64 {
        match self {
            // Equal-sized synthetic pairs.
            DatasetSpec::Pareto { .. } | DatasetSpec::ReversePareto { .. } => 0.5,
            // ebird (508M) vs cloud (382M).
            DatasetSpec::EbirdCloud => 508.0 / (508.0 + 382.0),
            // Self-join: split the catalog in half.
            DatasetSpec::PtfObjects => 0.5,
        }
    }
}

/// One row of the experiment catalog (Table 1 / Table 10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Identifier, e.g. `"pareto-1.5/d3/eps(2,2,2)"`.
    pub id: ExperimentId,
    /// Dataset family.
    pub dataset: DatasetSpec,
    /// The paper's band-width vector for this row.
    pub paper_band: Vec<f64>,
    /// Total input size reported by the paper, in millions of tuples (`|S| + |T|`).
    pub paper_input_millions: f64,
    /// Output size reported by the paper, in millions of tuples.
    pub paper_output_millions: f64,
}

/// A fully instantiated workload: concrete relations plus the calibrated band condition.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The experiment this workload was instantiated from.
    pub id: ExperimentId,
    /// Outer relation S.
    pub s: Relation,
    /// Inner relation T.
    pub t: Relation,
    /// The (possibly calibrated) band condition.
    pub band: BandCondition,
    /// The paper's target output-to-input ratio for this row.
    pub target_output_ratio: f64,
}

impl ExperimentConfig {
    /// Create a catalog row.
    pub fn new(
        id: impl Into<String>,
        dataset: DatasetSpec,
        paper_band: Vec<f64>,
        paper_input_millions: f64,
        paper_output_millions: f64,
    ) -> Self {
        assert_eq!(
            paper_band.len(),
            dataset.dims(),
            "band width arity mismatch"
        );
        ExperimentConfig {
            id: ExperimentId(id.into()),
            dataset,
            paper_band,
            paper_input_millions,
            paper_output_millions,
        }
    }

    /// The paper's output-to-input ratio `|S ⋈ T| / (|S| + |T|)` for this row.
    pub fn paper_output_ratio(&self) -> f64 {
        if self.paper_input_millions <= 0.0 {
            0.0
        } else {
            self.paper_output_millions / self.paper_input_millions
        }
    }

    /// Instantiate the workload with `total_tuples = |S| + |T|` tuples and calibrate the
    /// band width to the paper's output-to-input ratio (see the module docs).
    pub fn instantiate(&self, total_tuples: usize, seed: u64) -> Workload {
        let s_len = ((total_tuples as f64) * self.dataset.s_fraction()).round() as usize;
        let s_len = s_len.clamp(1, total_tuples.saturating_sub(1).max(1));
        let t_len = total_tuples - s_len;
        let (s, t) = self.dataset.generate(s_len, t_len.max(1), seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBAD5EED);
        let target_ratio = self.paper_output_ratio();
        let band = calibrate_band(&s, &t, &self.paper_band, target_ratio, &mut rng);
        Workload {
            id: self.id.clone(),
            s,
            t,
            band,
            target_output_ratio: target_ratio,
        }
    }

    /// Instantiate at the paper's band widths without any calibration.
    pub fn instantiate_uncalibrated(&self, total_tuples: usize, seed: u64) -> Workload {
        let s_len = ((total_tuples as f64) * self.dataset.s_fraction()).round() as usize;
        let s_len = s_len.clamp(1, total_tuples.saturating_sub(1).max(1));
        let t_len = total_tuples - s_len;
        let (s, t) = self.dataset.generate(s_len, t_len.max(1), seed);
        Workload {
            id: self.id.clone(),
            s,
            t,
            band: BandCondition::symmetric(&self.paper_band),
            target_output_ratio: self.paper_output_ratio(),
        }
    }
}

/// Scale the base band-width vector by a single multiplier so that the estimated
/// output-to-input ratio of `S ⋈ T` matches `target_ratio`.
///
/// Rows with zero target ratio (or an all-zero base vector, i.e. equi-joins) keep the
/// base band widths unchanged. The estimate uses the crate-independent output sampler
/// from `recpart`, so calibration costs a few thousand index probes.
pub fn calibrate_band<R: Rng + ?Sized>(
    s: &Relation,
    t: &Relation,
    base: &[f64],
    target_ratio: f64,
    rng: &mut R,
) -> BandCondition {
    let base_band = BandCondition::symmetric(base);
    if target_ratio <= 0.0 || base.iter().all(|&e| e == 0.0) {
        return base_band;
    }
    let total_input = (s.len() + t.len()) as f64;
    let target_output = target_ratio * total_input;
    let sample_cfg = SampleConfig {
        input_sample_size: 2_048,
        output_sample_size: 512,
        output_probe_count: 1_024,
    };
    let estimate = |mult: f64, rng: &mut R| -> f64 {
        let scaled: Vec<f64> = base.iter().map(|&e| e * mult).collect();
        let band = BandCondition::symmetric(&scaled);
        OutputSample::draw(s, t, &band, &sample_cfg, rng).estimated_output()
    };

    // Bisection on the multiplier (output size is monotone in the band width).
    let mut lo = 1e-4;
    let mut hi = 1.0;
    // Grow `hi` until the output estimate exceeds the target (or a hard cap is reached).
    let mut out_hi = estimate(hi, rng);
    let mut guard = 0;
    while out_hi < target_output && guard < 24 {
        hi *= 2.0;
        out_hi = estimate(hi, rng);
        guard += 1;
    }
    if out_hi < target_output {
        // Even an enormous band cannot reach the target (tiny inputs); use the cap.
        return BandCondition::symmetric(&base.iter().map(|&e| e * hi).collect::<Vec<_>>());
    }
    for _ in 0..24 {
        let mid = (lo * hi).sqrt();
        let est = estimate(mid, rng);
        if est < target_output {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi / lo < 1.05 {
            break;
        }
    }
    let mult = (lo * hi).sqrt();
    BandCondition::symmetric(&base.iter().map(|&e| e * mult).collect::<Vec<_>>())
}

/// The full catalog of Table 1 / Table 10 of the paper.
///
/// Input and output sizes are the paper's, in millions of tuples; use
/// [`ExperimentConfig::instantiate`] to produce a scaled-down concrete workload.
pub fn table1_catalog() -> Vec<ExperimentConfig> {
    use DatasetSpec::*;
    vec![
        // pareto-1.5, d = 1, varying band width.
        ExperimentConfig::new(
            "pareto-1.5/d1/eps0",
            Pareto { z: 1.5, dims: 1 },
            vec![0.0],
            400.0,
            2430.0,
        ),
        ExperimentConfig::new(
            "pareto-1.5/d1/eps1e-5",
            Pareto { z: 1.5, dims: 1 },
            vec![1e-5],
            400.0,
            4580.0,
        ),
        ExperimentConfig::new(
            "pareto-1.5/d1/eps2e-5",
            Pareto { z: 1.5, dims: 1 },
            vec![2e-5],
            400.0,
            9120.0,
        ),
        ExperimentConfig::new(
            "pareto-1.5/d1/eps3e-5",
            Pareto { z: 1.5, dims: 1 },
            vec![3e-5],
            400.0,
            11280.0,
        ),
        // pareto-1.5, d = 3, varying band width.
        ExperimentConfig::new(
            "pareto-1.5/d3/eps0",
            Pareto { z: 1.5, dims: 3 },
            vec![0.0; 3],
            400.0,
            0.0,
        ),
        ExperimentConfig::new(
            "pareto-1.5/d3/eps2",
            Pareto { z: 1.5, dims: 3 },
            vec![2.0; 3],
            400.0,
            1120.0,
        ),
        ExperimentConfig::new(
            "pareto-1.5/d3/eps4",
            Pareto { z: 1.5, dims: 3 },
            vec![4.0; 3],
            400.0,
            8740.0,
        ),
        // Skew sweep, d = 3, eps = (2,2,2).
        ExperimentConfig::new(
            "pareto-0.5/d3/eps2",
            Pareto { z: 0.5, dims: 3 },
            vec![2.0; 3],
            400.0,
            12.0,
        ),
        ExperimentConfig::new(
            "pareto-1.0/d3/eps2",
            Pareto { z: 1.0, dims: 3 },
            vec![2.0; 3],
            400.0,
            420.0,
        ),
        ExperimentConfig::new(
            "pareto-2.0/d3/eps2",
            Pareto { z: 2.0, dims: 3 },
            vec![2.0; 3],
            400.0,
            3200.0,
        ),
        // 8-dimensional scalability rows.
        ExperimentConfig::new(
            "pareto-1.5/d8/eps20/100M",
            Pareto { z: 1.5, dims: 8 },
            vec![20.0; 8],
            100.0,
            9.0,
        ),
        ExperimentConfig::new(
            "pareto-1.5/d8/eps20/200M",
            Pareto { z: 1.5, dims: 8 },
            vec![20.0; 8],
            200.0,
            57.0,
        ),
        ExperimentConfig::new(
            "pareto-1.5/d8/eps20/400M",
            Pareto { z: 1.5, dims: 8 },
            vec![20.0; 8],
            400.0,
            219.0,
        ),
        ExperimentConfig::new(
            "pareto-1.5/d8/eps20/800M",
            Pareto { z: 1.5, dims: 8 },
            vec![20.0; 8],
            800.0,
            857.0,
        ),
        // Reverse Pareto rows (zero output).
        ExperimentConfig::new(
            "rv-pareto-1.5/d1/eps2",
            ReversePareto { z: 1.5, dims: 1 },
            vec![2.0],
            400.0,
            0.0,
        ),
        ExperimentConfig::new(
            "rv-pareto-1.5/d1/eps1000",
            ReversePareto { z: 1.5, dims: 1 },
            vec![1000.0],
            400.0,
            0.0,
        ),
        ExperimentConfig::new(
            "rv-pareto-1.5/d3/eps1000",
            ReversePareto { z: 1.5, dims: 3 },
            vec![1000.0; 3],
            400.0,
            0.0,
        ),
        ExperimentConfig::new(
            "rv-pareto-1.5/d3/eps2000",
            ReversePareto { z: 1.5, dims: 3 },
            vec![2000.0; 3],
            400.0,
            0.0,
        ),
        // ebird ⋈ cloud rows.
        ExperimentConfig::new("ebird-cloud/eps0", EbirdCloud, vec![0.0; 3], 890.0, 0.0),
        ExperimentConfig::new("ebird-cloud/eps1", EbirdCloud, vec![1.0; 3], 890.0, 320.0),
        ExperimentConfig::new(
            "ebird-cloud/eps1-1-5",
            EbirdCloud,
            vec![1.0, 1.0, 5.0],
            890.0,
            1164.0,
        ),
        ExperimentConfig::new("ebird-cloud/eps2", EbirdCloud, vec![2.0; 3], 890.0, 2134.0),
        ExperimentConfig::new("ebird-cloud/eps4", EbirdCloud, vec![4.0; 3], 890.0, 16998.0),
        // PTF sky-survey rows (band widths of 1 and 3 arc seconds).
        ExperimentConfig::new(
            "ptf/eps1arcsec",
            PtfObjects,
            vec![2.78e-4; 2],
            1198.0,
            876.0,
        ),
        ExperimentConfig::new(
            "ptf/eps3arcsec",
            PtfObjects,
            vec![8.33e-4; 2],
            1198.0,
            1125.0,
        ),
    ]
}

/// Look up a catalog row by id; panics if it does not exist (catalog ids are static).
pub fn catalog_entry(id: &str) -> ExperimentConfig {
    table1_catalog()
        .into_iter()
        .find(|c| c.id.0 == id)
        .unwrap_or_else(|| panic!("unknown experiment id: {id}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_all_dataset_families() {
        let catalog = table1_catalog();
        assert!(catalog.len() >= 20);
        assert!(catalog
            .iter()
            .any(|c| matches!(c.dataset, DatasetSpec::Pareto { .. })));
        assert!(catalog
            .iter()
            .any(|c| matches!(c.dataset, DatasetSpec::ReversePareto { .. })));
        assert!(catalog.iter().any(|c| c.dataset == DatasetSpec::EbirdCloud));
        assert!(catalog.iter().any(|c| c.dataset == DatasetSpec::PtfObjects));
        // Ids are unique.
        let mut ids: Vec<&str> = catalog.iter().map(|c| c.id.0.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), catalog.len());
    }

    #[test]
    fn band_arity_matches_dims() {
        for c in table1_catalog() {
            assert_eq!(c.paper_band.len(), c.dataset.dims(), "row {}", c.id);
        }
    }

    #[test]
    fn catalog_entry_lookup() {
        let c = catalog_entry("pareto-1.5/d3/eps2");
        assert_eq!(c.dataset, DatasetSpec::Pareto { z: 1.5, dims: 3 });
        assert!((c.paper_output_ratio() - 2.8).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unknown experiment id")]
    fn unknown_entry_panics() {
        let _ = catalog_entry("no-such-experiment");
    }

    #[test]
    fn instantiate_generates_requested_sizes() {
        let c = catalog_entry("pareto-1.5/d3/eps0");
        let w = c.instantiate(2_000, 1);
        assert_eq!(w.s.len() + w.t.len(), 2_000);
        assert_eq!(w.s.dims(), 3);
        assert_eq!(w.band.dims(), 3);
        // Zero-output row keeps the paper's (zero) band widths.
        assert!(w.band.is_equi());
    }

    #[test]
    fn ebird_cloud_split_follows_paper_ratio() {
        let c = catalog_entry("ebird-cloud/eps0");
        let w = c.instantiate_uncalibrated(890, 2);
        // 508 : 382 split.
        assert!((w.s.len() as f64 - 508.0).abs() <= 1.0);
        assert!((w.t.len() as f64 - 382.0).abs() <= 1.0);
    }

    #[test]
    fn calibration_hits_target_output_ratio_approximately() {
        let c = catalog_entry("pareto-1.5/d3/eps2");
        let w = c.instantiate(4_000, 3);
        // Count the exact output of the calibrated workload.
        let mut exact = 0u64;
        for sk in w.s.iter() {
            for tk in w.t.iter() {
                if w.band.matches(&sk, &tk) {
                    exact += 1;
                }
            }
        }
        let ratio = exact as f64 / 4_000.0;
        let target = w.target_output_ratio; // 2.8
        assert!(
            ratio > target * 0.3 && ratio < target * 3.0,
            "calibrated output ratio {ratio:.2} too far from target {target:.2}"
        );
    }

    #[test]
    fn reverse_pareto_rows_have_empty_output() {
        let c = catalog_entry("rv-pareto-1.5/d3/eps1000");
        let w = c.instantiate(1_000, 4);
        let mut exact = 0u64;
        for sk in w.s.iter() {
            for tk in w.t.iter() {
                if w.band.matches(&sk, &tk) {
                    exact += 1;
                }
            }
        }
        assert_eq!(
            exact, 0,
            "reverse Pareto with eps=1000 must produce no output"
        );
    }
}
