//! # band-join — distributed band-joins through recursive partitioning
//!
//! This is the facade crate of the workspace reproducing *"Near-Optimal Distributed
//! Band-Joins through Recursive Partitioning"* (SIGMOD 2020). It re-exports the public
//! API of the four underlying crates so that applications can depend on a single crate:
//!
//! * [`recpart`] — the RecPart optimizer and split-tree partitioner (the paper's
//!   contribution), plus the shared vocabulary types ([`Relation`], [`BandCondition`],
//!   the [`Partitioner`] trait, load models and partitioning statistics);
//! * [`baselines`] — the competitor partitioners (1-Bucket, Grid-ε, Grid*, CSIO,
//!   IEJoin-style blocks);
//! * [`distsim`] — the simulated MapReduce-style cluster: local join algorithms, the
//!   executor that measures `I`, `I_m`, `O_m`, `L_m`, the linear running-time model, and
//!   correctness verification;
//! * [`datagen`] — workload generators and the experiment catalog of the paper.
//!
//! ## Quickstart
//!
//! ```
//! use band_join::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Generate a small skewed workload (Pareto-distributed join attribute).
//! let mut rng = StdRng::seed_from_u64(42);
//! let s = datagen::pareto_relation(5_000, 1, 1.5, &mut rng);
//! let t = datagen::pareto_relation(5_000, 1, 1.5, &mut rng);
//! let band = BandCondition::symmetric(&[0.01]);
//!
//! // Find a partitioning for 8 workers with RecPart.
//! let result = RecPart::new(RecPartConfig::new(8)).optimize(&s, &t, &band, &mut rng);
//!
//! // Run the join on the simulated cluster and inspect the paper's success measures.
//! let report = Executor::with_workers(8).execute(&result.partitioner, &s, &t, &band);
//! assert_eq!(report.correct, Some(true));
//! println!(
//!     "I = {}, Im = {}, Om = {}, duplication overhead = {:.1}%",
//!     report.stats.total_input,
//!     report.stats.max_worker_input,
//!     report.stats.max_worker_output,
//!     100.0 * report.duplication_overhead(),
//! );
//! ```

pub use baselines;
pub use datagen;
pub use distsim;
pub use recpart;

/// One-stop imports for applications.
pub mod prelude {
    pub use baselines::{
        CsioConfig, CsioPartitioner, GridPartitioner, GridStarPartitioner, IEJoinPartitioner,
        OneBucket,
    };
    pub use datagen;
    pub use distsim::{
        exact_join_count, exact_join_count_on, process_peak_rss_bytes, BandJoinQuery,
        BandJoinService, CostModel, ExecutionReport, Executor, ExecutorConfig, FaultKind,
        FaultPlan, FaultSpec, InjectionPoint, LocalJoinAlgorithm, MachineModel, PartitionedIndex,
        PlanCache, PlanKey, PlanSource, QueryResponse, RecoveryCounters, ServiceConfig,
        ServiceHealth, ShardError, ShardFailureKind, ShardPlan, ShardStats, ShardedExecution,
        ShuffleConfig, ShuffledInputs, SuperviseError, SupervisedExecution, SupervisorConfig,
        VerificationLevel,
    };
    pub use recpart::{
        spill_fallback_count, AssignmentSink, BandCondition, CompiledRouter, EvalCounters,
        Evaluator, LoadModel, OptimizationReport, PartitionId, Partitioner, PartitioningStats,
        PerTupleFallback, PlanCacheCounters, RecPart, RecPartConfig, RecPartResult, Relation,
        RouteKernel, SampleConfig, ScatterPolicy, SpillDir, SplitScorer, SplitSearchCounters,
        SplitTreePartitioner, StorageMode, Termination,
    };
}
