//! Side-by-side comparison of every partitioner in the workspace on a skewed 3-D
//! band-join — a miniature version of the paper's Table 2b.
//!
//! ```text
//! cargo run --release --example partitioner_comparison
//! ```

use band_join::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let workers = 10;
    let total = 60_000usize;
    let mut rng = StdRng::seed_from_u64(3);

    // pareto-1.5 in 3 dimensions, band width calibrated by the catalog to the paper's
    // output-to-input ratio for eps = (2,2,2).
    let config = datagen::catalog::catalog_entry("pareto-1.5/d3/eps2");
    let workload = config.instantiate(total, 11);
    let (s, t, band) = (&workload.s, &workload.t, &workload.band);
    println!(
        "Workload {}: |S|={}, |T|={}, calibrated band = {:?}",
        workload.id,
        s.len(),
        t.len(),
        (0..band.dims()).map(|d| band.eps(d)).collect::<Vec<_>>()
    );

    // Build every strategy.
    let recpart_s = RecPart::new(RecPartConfig::new(workers).without_symmetric())
        .optimize(s, t, band, &mut rng);
    let recpart = RecPart::new(RecPartConfig::new(workers)).optimize(s, t, band, &mut rng);
    let one_bucket = OneBucket::new(workers, s.len(), t.len(), 5);
    let grid = GridPartitioner::build(s, t, band, 1.0);
    let grid_star =
        GridStarPartitioner::build(s, t, band, workers, &CostModel::default(), 64, &mut rng);
    let csio = CsioPartitioner::build(s, t, band, workers, &CsioConfig::default(), &mut rng);
    let iejoin = IEJoinPartitioner::build(s, t, band, (s.len() / (2 * workers)).max(1));

    let strategies: Vec<(&str, &dyn Partitioner)> = vec![
        ("RecPart", &recpart.partitioner),
        ("RecPart-S", &recpart_s.partitioner),
        ("CSIO", &csio),
        ("1-Bucket", &one_bucket),
        ("Grid-eps", &grid),
        ("Grid*", &grid_star),
        ("IEJoin", &iejoin),
    ];

    let executor = Executor::with_workers(workers);
    println!(
        "{:<10} {:>10} {:>9} {:>9} {:>10} {:>10} {:>11}",
        "strategy", "I", "Im", "Om", "dup ovh", "load ovh", "sim time"
    );
    for (name, partitioner) in strategies {
        let report = executor.execute(partitioner, s, t, band);
        assert_eq!(
            report.correct,
            Some(true),
            "{name} produced an incorrect result"
        );
        println!(
            "{:<10} {:>10} {:>9} {:>9} {:>9.1}% {:>9.1}% {:>10.1}s",
            name,
            report.stats.total_input,
            report.stats.max_worker_input,
            report.stats.max_worker_output,
            100.0 * report.duplication_overhead(),
            100.0 * report.load_overhead(),
            report.simulated_join_seconds,
        );
    }
}
