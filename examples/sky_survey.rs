//! Astronomy workload (Table 16 of the paper): a 2-D band self-join of sky-survey
//! object detections on (right ascension, declination) with arc-second band widths,
//! which finds repeat observations of the same celestial object.
//!
//! RecPart is run with the *theoretical* termination condition — it needs no cost model,
//! only the lower bounds on total input and max worker load.
//!
//! ```text
//! cargo run --release --example sky_survey
//! ```

use band_join::prelude::*;
use datagen::SkySurveyGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let workers = 16;
    let mut rng = StdRng::seed_from_u64(2020);

    // Synthetic PTF-like object catalog: clustered survey fields + galactic plane.
    let gen = SkySurveyGenerator::new(80, &mut rng);
    let detections_a = gen.generate(40_000, &mut rng);
    let detections_b = gen.generate(40_000, &mut rng);

    // 3 arc seconds in both dimensions.
    let arcsec = 1.0 / 3600.0;
    let band = BandCondition::symmetric(&[3.0 * arcsec, 3.0 * arcsec]);

    println!(
        "Self-joining {} + {} detections with a 3-arcsecond band…",
        detections_a.len(),
        detections_b.len()
    );

    let config = RecPartConfig::new(workers).with_theoretical_termination();
    let recpart = RecPart::new(config).optimize(&detections_a, &detections_b, &band, &mut rng);
    let one_bucket = OneBucket::new(workers, detections_a.len(), detections_b.len(), 99);

    let executor = Executor::with_workers(workers);
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>12} {:>12}",
        "strategy", "I", "Im", "Om", "dup ovh", "load ovh"
    );
    for (name, partitioner) in [
        ("RecPart", &recpart.partitioner as &dyn Partitioner),
        ("1-Bucket", &one_bucket as &dyn Partitioner),
    ] {
        let report = executor.execute(partitioner, &detections_a, &detections_b, &band);
        assert_eq!(
            report.correct,
            Some(true),
            "{name} produced an incorrect result"
        );
        println!(
            "{:<10} {:>12} {:>10} {:>10} {:>11.1}% {:>11.1}%",
            name,
            report.stats.total_input,
            report.stats.max_worker_input,
            report.stats.max_worker_output,
            100.0 * report.duplication_overhead(),
            100.0 * report.load_overhead(),
        );
    }
    println!();
    println!(
        "RecPart stopped after {} iterations: {}",
        recpart.report.iterations, recpart.report.termination_reason
    );
}
