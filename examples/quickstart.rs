//! Quickstart: partition a skewed 1-D band-join with RecPart and run it on the
//! simulated cluster.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use band_join::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let workers = 8;
    let mut rng = StdRng::seed_from_u64(42);

    // 1. A skewed workload: Pareto-distributed join attribute, as in the paper's
    //    synthetic experiments.
    let s = datagen::pareto_relation(50_000, 1, 1.5, &mut rng);
    let t = datagen::pareto_relation(50_000, 1, 1.5, &mut rng);
    let band = BandCondition::symmetric(&[0.001]);

    // 2. Optimization phase: RecPart finds a recursive partitioning of the
    //    join-attribute space from an input and an output sample.
    let config = RecPartConfig::new(workers);
    let result = RecPart::new(config).optimize(&s, &t, &band, &mut rng);
    println!("== RecPart optimization ==");
    println!("  iterations        : {}", result.report.iterations);
    println!("  leaves            : {}", result.report.leaves);
    println!("  partitions        : {}", result.report.partitions);
    println!(
        "  est. dup overhead : {:.2}%",
        100.0 * result.report.estimated_dup_overhead
    );
    println!(
        "  optimization time : {:.1} ms",
        1e3 * result.report.optimization_seconds
    );

    // 3. Join phase: execute on the simulated cluster and verify correctness against an
    //    exact single-node join.
    let executor = Executor::with_workers(workers);
    let report = executor.execute(&result.partitioner, &s, &t, &band);
    println!("== Simulated execution on {workers} workers ==");
    println!("  |S| + |T|          : {}", s.len() + t.len());
    println!("  output |S ⋈ T|     : {}", report.stats.output_len);
    println!("  total input I      : {}", report.stats.total_input);
    println!("  max worker input Im: {}", report.stats.max_worker_input);
    println!("  max worker outp. Om: {}", report.stats.max_worker_output);
    println!(
        "  duplication overhead: {:.2}% (lower bound 0%)",
        100.0 * report.duplication_overhead()
    );
    println!(
        "  max-load overhead   : {:.2}% (lower bound 0%)",
        100.0 * report.load_overhead()
    );
    println!(
        "  simulated join time : {:.1} s",
        report.simulated_join_seconds
    );
    println!(
        "  result verified     : {}",
        report.correct.map(|c| c.to_string()).unwrap_or_default()
    );
}
