//! The classic 1-D band-join from the Oracle SQL Reference (and the paper's
//! introduction): find pairs of employees whose salaries differ by at most $100.
//!
//! The example also shows an *asymmetric* band condition ("earns at most $250 less and
//! at most $100 more") and how to plug a custom load model into the optimizer.
//!
//! ```text
//! cargo run --release --example salary_bands
//! ```

use band_join::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recpart::BandCondition as Band;

/// Draw a log-normal-ish salary distribution in dollars.
fn salaries(n: usize, rng: &mut StdRng) -> Relation {
    let mut r = Relation::with_capacity(1, n);
    for _ in 0..n {
        let base: f64 = rng.gen_range(0.0f64..1.0).powf(2.5);
        let salary = 30_000.0 + base * 270_000.0 + rng.gen_range(0.0..500.0);
        r.push(&[salary]);
    }
    r
}

fn main() {
    let workers = 6;
    let mut rng = StdRng::seed_from_u64(1);
    let engineers = salaries(30_000, &mut rng);
    let managers = salaries(20_000, &mut rng);

    // |salary difference| ≤ $100.
    let symmetric = Band::symmetric(&[100.0]);
    // Asymmetric variant: engineer earns at most $250 less and at most $100 more
    // than the manager.
    let asymmetric = Band::try_asymmetric(&[250.0], &[100.0]).expect("valid band");

    let executor = Executor::with_workers(workers);
    for (label, band) in [
        ("symmetric ±$100", &symmetric),
        ("asymmetric -$250/+$100", &asymmetric),
    ] {
        // A load model with cheap output (β₂/β₃ = 8) — e.g. results stream to a sink.
        let config = RecPartConfig::new(workers).with_load_model(LoadModel::new(8.0, 1.0));
        let result = RecPart::new(config).optimize(&engineers, &managers, band, &mut rng);
        let report = executor.execute(&result.partitioner, &engineers, &managers, band);
        assert_eq!(report.correct, Some(true));
        println!("== {label} ==");
        println!("  matching pairs      : {}", report.stats.output_len);
        println!(
            "  partitions          : {}",
            result.partitioner.num_partitions()
        );
        println!(
            "  duplication overhead: {:.2}%",
            100.0 * report.duplication_overhead()
        );
        println!(
            "  max-load overhead   : {:.2}%",
            100.0 * report.load_overhead()
        );
        println!();
    }
}
