//! The paper's motivating scenario (Example 1): join bird observations with weather
//! reports on longitude, latitude and time using a 3-D band condition, so that every
//! sighting is linked to weather measured "nearby" in space and time.
//!
//! ```text
//! cargo run --release --example birds_and_weather
//! ```

use band_join::prelude::*;
use datagen::spatial::{BirdObservationGenerator, SpatialConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let workers = 12;
    let mut rng = StdRng::seed_from_u64(7);

    // Synthetic stand-ins for the ebird and cloud datasets: clustered spatio-temporal
    // observations with shared hot spots (see DESIGN.md for the substitution notes).
    let birds_gen = BirdObservationGenerator::new(SpatialConfig::default(), &mut rng);
    let weather_gen = birds_gen.paired_weather_generator(&mut rng);
    let birds = birds_gen.generate(40_000, &mut rng);
    let weather = weather_gen.generate(30_000, &mut rng);

    // |B.time − W.time| ≤ 10 days, |Δlatitude| ≤ 0.5°, |Δlongitude| ≤ 0.5°.
    let band = BandCondition::symmetric(&[10.0, 0.5, 0.5]);

    println!(
        "Joining {} bird observations with {} weather reports on (time, lat, lon)…",
        birds.len(),
        weather.len()
    );

    // RecPart with the full symmetric-partitioning extension.
    let recpart =
        RecPart::new(RecPartConfig::new(workers)).optimize(&birds, &weather, &band, &mut rng);

    // The Grid-ε baseline for comparison.
    let grid = GridPartitioner::build(&birds, &weather, &band, 1.0);

    let executor = Executor::with_workers(workers);
    let strategies: Vec<(&str, &dyn Partitioner)> =
        vec![("RecPart", &recpart.partitioner), ("Grid-eps", &grid)];

    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "strategy", "I", "Im", "Om", "dup ovh", "load ovh", "sim time"
    );
    for (name, partitioner) in strategies {
        let report = executor.execute(partitioner, &birds, &weather, &band);
        assert_eq!(
            report.correct,
            Some(true),
            "{name} produced an incorrect result"
        );
        println!(
            "{:<10} {:>12} {:>10} {:>10} {:>11.1}% {:>11.1}% {:>9.1}s",
            name,
            report.stats.total_input,
            report.stats.max_worker_input,
            report.stats.max_worker_output,
            100.0 * report.duplication_overhead(),
            100.0 * report.load_overhead(),
            report.simulated_join_seconds,
        );
    }
    println!();
    println!(
        "RecPart grew a split tree with {} leaves ({} partitions) in {:.1} ms.",
        recpart.report.leaves,
        recpart.report.partitions,
        1e3 * recpart.report.optimization_seconds
    );
}
